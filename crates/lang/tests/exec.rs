//! End-to-end execution tests: compile PXC, run on the baseline machine,
//! check program behaviour and instrumentation effects.

use px_lang::{compile, CompileOptions};
use px_mach::{run_baseline, IoState, MachConfig, RunExit};

fn run(src: &str) -> px_mach::RunResult {
    run_io(src, b"")
}

fn run_io(src: &str, input: &[u8]) -> px_mach::RunResult {
    let compiled = compile(src, &CompileOptions::default()).expect("compile");
    run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::new(input.to_vec(), 42),
        5_000_000,
    )
}

fn output(src: &str) -> String {
    let r = run(src);
    assert_eq!(r.exit, RunExit::Exited(0), "program must exit 0");
    r.io.output_string()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(
        output("int main() { printint(2 + 3 * 4 - 10 / 2); return 0; }"),
        "9"
    );
    assert_eq!(output("int main() { printint(-7 % 3); return 0; }"), "-1");
    assert_eq!(
        output("int main() { printint((1 << 6) | (64 >> 3) ^ 12 & 10); return 0; }"),
        64.to_string()
    );
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        output(
            "int main() {
                printint(3 < 4); printint(4 <= 3); printint(5 > 1);
                printint(5 >= 6); printint(2 == 2); printint(2 != 2);
                printint(!0); printint(!7);
                return 0;
            }"
        ),
        "10101010"
    );
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // The right side would divide by zero (a crash) if evaluated.
    assert_eq!(
        output(
            "int zero() { return 0; }
             int main() {
                int d = 0;
                if (zero() && 1 / d) { printint(1); } else { printint(2); }
                if (1 || 1 / d) { printint(3); }
                return 0;
             }"
        ),
        "23"
    );
}

#[test]
fn while_for_break_continue() {
    assert_eq!(
        output(
            "int main() {
                int i; int sum = 0;
                for (i = 0; i < 10; i = i + 1) {
                    if (i == 3) continue;
                    if (i == 7) break;
                    sum = sum + i;
                }
                printint(sum);
                int n = 0;
                while (1) { n = n + 1; if (n >= 5) break; }
                printint(n);
                return 0;
            }"
        ),
        "185"
    );
}

#[test]
fn recursion_fibonacci() {
    assert_eq!(
        output(
            "int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
             }
             int main() { printint(fib(15)); return 0; }"
        ),
        "610"
    );
}

#[test]
fn nested_calls_preserve_live_temps() {
    // f(x) + g(y): the second call must not clobber the first result.
    assert_eq!(
        output(
            "int f(int x) { return x * 10; }
             int g(int y) { return y + 1; }
             int main() { printint(f(3) + g(4) + f(1) * g(0)); return 0; }"
        ),
        "45"
    );
}

#[test]
fn many_arguments() {
    assert_eq!(
        output(
            "int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
             }
             int main() { printint(sum6(1, 2, 3, 4, 5, 6)); return 0; }"
        ),
        "21"
    );
}

#[test]
fn globals_and_initializers() {
    assert_eq!(
        output(
            "int counter = 10;
             int table[4] = {2, 4, 6, 8};
             char letter = 'A';
             int main() {
                counter = counter + table[2];
                putchar(letter);
                printint(counter);
                return 0;
             }"
        ),
        "A16"
    );
}

#[test]
fn local_arrays_and_loops() {
    assert_eq!(
        output(
            "int main() {
                int a[8];
                int i;
                for (i = 0; i < 8; i = i + 1) a[i] = i * i;
                int sum = 0;
                for (i = 0; i < 8; i = i + 1) sum = sum + a[i];
                printint(sum);
                return 0;
            }"
        ),
        "140"
    );
}

#[test]
fn char_arrays_and_strings() {
    assert_eq!(
        output(
            r#"char buf[16];
            int strcopy(char* dst, char* src) {
                int i = 0;
                while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
                dst[i] = 0;
                return i;
            }
            int main() {
                int n = strcopy(buf, "hello");
                int i;
                for (i = 0; i < n; i = i + 1) putchar(buf[i]);
                printint(n);
                return 0;
            }"#
        ),
        "hello5"
    );
}

#[test]
fn pointers_and_address_of() {
    assert_eq!(
        output(
            "void bump(int* p) { *p = *p + 1; }
             int main() {
                int x = 41;
                bump(&x);
                printint(x);
                int* q = &x;
                *q = *q * 2;
                printint(x);
                return 0;
             }"
        ),
        "4284"
    );
}

#[test]
fn structs_members_and_arrows() {
    assert_eq!(
        output(
            "struct Point { int x; int y; };
             struct Rect { struct Point a; struct Point b; };
             int area(struct Rect* r) {
                return (r->b.x - r->a.x) * (r->b.y - r->a.y);
             }
             int main() {
                struct Rect r;
                r.a.x = 1; r.a.y = 2; r.b.x = 5; r.b.y = 7;
                printint(area(&r));
                return 0;
             }"
        ),
        "20"
    );
}

#[test]
fn linked_list_with_alloc() {
    assert_eq!(
        output(
            "struct Node { int val; struct Node* next; };
             int main() {
                struct Node* head = 0;
                int i;
                for (i = 1; i <= 4; i = i + 1) {
                    struct Node* n = alloc(sizeof(struct Node));
                    n->val = i * i;
                    n->next = head;
                    head = n;
                }
                int sum = 0;
                while (head != 0) { sum = sum + head->val; head = head->next; }
                printint(sum);
                return 0;
             }"
        ),
        "30"
    );
}

#[test]
fn io_roundtrip() {
    let r = run_io(
        "int main() {
            int a = readint();
            int b = readint();
            printint(a * b);
            int c = getchar();
            while (c != -1) { putchar(c); c = getchar(); }
            return 0;
        }",
        b"6 7 ok",
    );
    assert_eq!(r.io.output_string(), "42 ok");
}

#[test]
fn sizeof_values() {
    assert_eq!(
        output(
            "struct S { int a; char c; int b; };
             int main() {
                printint(sizeof(int)); printint(sizeof(char));
                printint(sizeof(int*)); printint(sizeof(struct S));
                return 0;
             }"
        ),
        "41412"
    );
}

#[test]
fn assertion_failures_reach_monitor() {
    let r = run("int main() {
            int x = 3;
            assert(x == 3);
            assert(x == 4);
            assert(x < 10);
            return 0;
        }");
    assert_eq!(r.exit, RunExit::Exited(0));
    assert_eq!(r.monitor.len(), 1, "only the failing assert reports");
}

#[test]
fn assert_sites_map_to_lines() {
    let compiled = compile(
        "int main() {\n  int x = 1;\n  assert(x == 2);\n  return 0;\n}\n",
        &CompileOptions::default(),
    )
    .unwrap();
    let site = compiled.site_at_line(3).expect("assert on line 3");
    let r = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    assert_eq!(r.monitor.records()[0].site, site);
}

#[test]
fn ccured_catches_out_of_bounds() {
    let compiled = compile(
        "int main() {
            int a[4];
            int i;
            for (i = 0; i <= 4; i = i + 1) a[i] = i;
            return 0;
        }",
        &CompileOptions::ccured(),
    )
    .unwrap();
    let r = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    let bound_failures = r
        .monitor
        .records()
        .iter()
        .filter(|rec| {
            matches!(
                rec.kind,
                px_mach::RecordKind::Check(px_isa::CheckKind::CcuredBound)
            )
        })
        .count();
    assert_eq!(bound_failures, 1, "a[4] trips exactly one bounds check");
    // Without CCured, the overflow is silent (it lands in the frame).
    let plain = run("int main() {
            int a[4];
            int i;
            for (i = 0; i <= 4; i = i + 1) a[i] = i;
            return 0;
        }");
    assert!(plain.monitor.is_empty());
}

#[test]
fn ccured_catches_null_deref_check_before_crash() {
    let compiled = compile(
        "int main() {
            int* p = 0;
            printint(*p);
            return 0;
        }",
        &CompileOptions::ccured(),
    )
    .unwrap();
    let r = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    // The null check reports, then the access crashes the taken path.
    assert_eq!(r.monitor.len(), 1);
    assert!(matches!(r.exit, RunExit::Crashed(_)));
}

#[test]
fn iwatcher_redzone_catches_overflow() {
    let compiled = compile(
        "int g[4];
         int main() {
            int i;
            for (i = 0; i <= 4; i = i + 1) g[i] = i;
            return 0;
         }",
        &CompileOptions::iwatcher(),
    )
    .unwrap();
    assert_eq!(compiled.watches.len(), 1);
    let tag = compiled.watch_tag_for("g").unwrap();
    let r = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    let hits: Vec<_> = r
        .monitor
        .records()
        .iter()
        .filter(|rec| matches!(rec.kind, px_mach::RecordKind::Watch { .. }))
        .collect();
    assert_eq!(hits.len(), 1, "g[4] lands in the red zone");
    assert_eq!(hits[0].site, tag);
}

#[test]
fn iwatcher_local_array_redzone() {
    let compiled = compile(
        "int f(int n) {
            int buf[4];
            int i;
            for (i = 0; i < n; i = i + 1) buf[i] = i;
            return buf[0];
         }
         int main() { return f(5) * 0; }",
        &CompileOptions::iwatcher(),
    )
    .unwrap();
    let r = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    assert_eq!(r.exit, RunExit::Exited(0));
    assert_eq!(r.monitor.len(), 1, "buf[4] lands in the local red zone");
}

#[test]
fn fix_instructions_are_nops_on_the_taken_path() {
    // The same source, with and without fix insertion, must behave
    // identically in a normal run.
    let src = "int main() {
        int x = 7;
        int y = 0;
        if (x > 5) y = 1; else y = 2;
        while (x > 0) { x = x - 1; y = y + x; }
        printint(y);
        return 0;
    }";
    let with = compile(src, &CompileOptions::default()).unwrap();
    let without = compile(
        src,
        &CompileOptions {
            insert_fixes: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let a = run_baseline(
        &with.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    let b = run_baseline(
        &without.program,
        &MachConfig::single_core(),
        IoState::default(),
        100_000,
    );
    assert_eq!(a.io.output_string(), b.io.output_string());
    assert_eq!(a.io.output_string(), "22");
    assert!(
        with.program.code.len() > without.program.code.len(),
        "fix instructions were inserted"
    );
    let predicated = with
        .program
        .code
        .iter()
        .filter(|i| i.is_predicated())
        .count();
    assert!(predicated > 0, "predicated fixes present");
}

#[test]
fn blank_area_exists_for_pointer_programs() {
    let compiled = compile(
        "struct T { int a; };
         int main() { struct T* p = 0; if (p != 0) { return p->a; } return 0; }",
        &CompileOptions::default(),
    )
    .unwrap();
    let (lo, hi) = compiled.program.blank_area.expect("blank area");
    assert!(hi > lo, "blanks allocated");
}

#[test]
fn compile_errors_are_reported() {
    let opts = CompileOptions::default();
    assert!(compile("int main() { return undefined_var; }", &opts).is_err());
    assert!(compile("int main() { undefined_fn(); return 0; }", &opts).is_err());
    assert!(
        compile("int f() { return 0; }", &opts).is_err(),
        "missing main"
    );
    assert!(compile("int main() { break; }", &opts).is_err());
    assert!(compile(
        "struct S { struct Unknown u; }; int main() { return 0; }",
        &opts
    )
    .is_err());
    assert!(compile("int main() { int x; x.field = 1; return 0; }", &opts).is_err());
    assert!(compile("int main(int a, int b) { return sum6(1); }", &opts).is_err());
}

#[test]
fn exit_intrinsic_stops_immediately() {
    let r = run("int main() { printint(1); exit(3); printint(2); return 0; }");
    assert_eq!(r.exit, RunExit::Exited(3));
    assert_eq!(r.io.output_string(), "1");
}

#[test]
fn rand_and_time_are_available() {
    let r = run("int main() {
            int a = rand();
            int b = rand();
            int t = time();
            if (a < 0) return 1;
            if (t < 0) return 2;
            if (a == b) return 3;
            return 0;
        }");
    assert_eq!(r.exit, RunExit::Exited(0));
}

#[test]
fn deterministic_compilation() {
    let src = "int main() { int i; for (i = 0; i < 3; i = i + 1) printint(i); return 0; }";
    let a = compile(src, &CompileOptions::default()).unwrap();
    let b = compile(src, &CompileOptions::default()).unwrap();
    assert_eq!(a.program, b.program);
}
