//! Lints the compiler's own output: px-analyze over generated code.
//!
//! The PXC code generator must never emit code the static analyser calls
//! structurally broken — no unreachable instructions, no out-of-bounds
//! constant addresses, no dead checks, and every §4.4 predicated fix slot
//! placed where an NT-path can actually execute it. The one advisory we
//! *expect* is `call-ret-mismatch`: epilogues restore RA from the stack
//! (a non-`call` write to RA), which the linter conservatively reports.

use px_analyze::{Analysis, LintKind};
use px_lang::{compile, CompileOptions};

/// Sources spanning the code generator's surface: calls/recursion,
/// loops, arrays and pointers, globals, short-circuit logic, I/O.
const SOURCES: &[(&str, &str)] = &[
    (
        "recursion",
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main() { printint(fib(10)); return 0; }",
    ),
    (
        "arrays-and-loops",
        "int a[16];
         int main() {
             int i; int sum;
             sum = 0;
             for (i = 0; i < 16; i = i + 1) { a[i] = i * i; }
             for (i = 0; i < 16; i = i + 1) { sum = sum + a[i]; }
             printint(sum);
             return 0;
         }",
    ),
    (
        "pointers",
        "int g;
         int set(int *p, int v) { *p = v; return *p; }
         int main() { int x; x = 0; printint(set(&x, 7) + set(&g, 2)); return 0; }",
    ),
    (
        "short-circuit-and-io",
        "int main() {
             int c; int n;
             n = 0;
             c = getchar();
             while (c >= 48 && c <= 57) { n = n * 10 + (c - 48); c = getchar(); }
             if (n > 100 || n == 42) { printint(1); } else { printint(0); }
             return 0;
         }",
    ),
    (
        "assertions",
        "int main() {
             int x;
             x = readint();
             assert(x >= 0);
             printint(x + 1);
             return 0;
         }",
    ),
];

fn variants() -> Vec<(&'static str, CompileOptions)> {
    let plain = CompileOptions {
        insert_fixes: false,
        ..CompileOptions::default()
    };
    let fixes = CompileOptions::default();
    let ccured = CompileOptions {
        ccured: true,
        ..CompileOptions::default()
    };
    let iwatcher = CompileOptions {
        iwatcher: true,
        ..CompileOptions::default()
    };
    vec![
        ("plain", plain),
        ("fixes", fixes),
        ("ccured", ccured),
        ("iwatcher", iwatcher),
    ]
}

#[test]
fn generated_code_lints_clean_modulo_ra_restore() {
    for (name, src) in SOURCES {
        for (variant, opts) in variants() {
            let compiled = compile(src, &opts)
                .unwrap_or_else(|e| panic!("{name} [{variant}] failed to compile: {e}"));
            let analysis = Analysis::of(&compiled.program);
            for d in analysis.diagnostics() {
                assert_eq!(
                    d.kind,
                    LintKind::CallRetMismatch,
                    "{name} [{variant}]: code generator produced a real lint \
                     finding at pc {} (line {}): {}\n{}",
                    d.pc,
                    d.line,
                    d.message,
                    compiled.program.disassemble()
                );
            }
        }
    }
}

#[test]
fn predicated_fix_slots_live_in_nt_context() {
    // With fix insertion on, generated code contains predicated
    // instructions; the analyser must agree they all sit in NT-entry
    // context (design D1), i.e. the `predicated-outside-nt` lint stays
    // silent. Make sure the premise holds: fixes actually were emitted.
    let src = SOURCES[1].1;
    let compiled = compile(src, &CompileOptions::default()).expect("compile");
    let has_predicated = compiled.program.code.iter().any(|i| i.is_predicated());
    assert!(has_predicated, "fix insertion should emit predicated slots");
    let analysis = Analysis::of(&compiled.program);
    assert!(
        !analysis
            .diagnostics()
            .iter()
            .any(|d| d.kind == px_analyze::LintKind::PredicatedOutsideNt),
        "every predicated fix slot must be reachable by an NT-path"
    );
}
