//! Differential property tests: randomly generated PXC expressions and
//! statement sequences are compiled to PXVM-32, executed on the machine, and
//! compared against a host-side Rust oracle that evaluates the same AST.
//!
//! This catches codegen bugs (operand order, precedence, spills across
//! calls, short-circuit semantics) far beyond what hand-written tests reach.
//!
//! Runs on the in-tree `px_util` property harness (`px_prop!`).

use px_lang::ast::{BinOp, Expr, ExprKind, UnOp};
use px_lang::{compile, CompileOptions};
use px_mach::{run_baseline, IoState, MachConfig, RunExit};
use px_util::prop::{just, BoxedStrategy, Strategy};
use px_util::{px_oneof, px_prop};

// ---------------------------------------------------------------------------
// AST generation
// ---------------------------------------------------------------------------

/// Variables available to generated expressions, preset to fixed values.
const VARS: [(&str, i32); 4] = [("a", 7), ("b", -3), ("c", 100), ("d", 0)];

fn arb_binop() -> BoxedStrategy<BinOp> {
    px_oneof![
        just(BinOp::Add),
        just(BinOp::Sub),
        just(BinOp::Mul),
        just(BinOp::Div),
        just(BinOp::Rem),
        just(BinOp::BitAnd),
        just(BinOp::BitOr),
        just(BinOp::BitXor),
        just(BinOp::Shl),
        just(BinOp::Shr),
        just(BinOp::Eq),
        just(BinOp::Ne),
        just(BinOp::Lt),
        just(BinOp::Le),
        just(BinOp::Gt),
        just(BinOp::Ge),
        just(BinOp::LogAnd),
        just(BinOp::LogOr),
    ]
    .boxed()
}

fn arb_leaf() -> BoxedStrategy<Expr> {
    px_oneof![
        (-200i64..200).prop_map(|v| Expr {
            kind: ExprKind::Int(v),
            line: 1
        }),
        (0usize..VARS.len()).prop_map(|i| Expr {
            kind: ExprKind::Var(VARS[i].0.to_owned()),
            line: 1
        }),
    ]
    .boxed()
}

/// Expressions up to `depth` operator levels; the recursive alternatives
/// are weighted 3:2 against leaves, like the original `prop_recursive`
/// tree (depth 4, expected branch factor 3).
fn arb_expr_depth(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return arb_leaf();
    }
    let inner = || arb_expr_depth(depth - 1);
    px_oneof![
        arb_leaf(),
        (arb_binop(), inner(), inner()).prop_map(|(op, l, r)| Expr {
            kind: ExprKind::Bin(op, Box::new(l), Box::new(r)),
            line: 1,
        }),
        inner().prop_map(|e| Expr {
            kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
            line: 1
        }),
        inner().prop_map(|e| Expr {
            kind: ExprKind::Un(UnOp::Not, Box::new(e)),
            line: 1
        }),
    ]
    .boxed()
}

fn arb_expr() -> BoxedStrategy<Expr> {
    arb_expr_depth(4)
}

// ---------------------------------------------------------------------------
// Host oracle
// ---------------------------------------------------------------------------

/// Evaluates the expression like the PXVM semantics should. Division or
/// remainder by zero returns `None` (the machine crashes there).
fn eval(e: &Expr) -> Option<i32> {
    Some(match &e.kind {
        ExprKind::Int(v) => *v as i32,
        ExprKind::Var(name) => VARS.iter().find(|(n, _)| n == name).expect("known var").1,
        ExprKind::Un(UnOp::Neg, x) => 0i32.wrapping_sub(eval(x)?),
        ExprKind::Un(UnOp::Not, x) => i32::from(eval(x)? == 0),
        ExprKind::Bin(op, l, r) => {
            // Short-circuit first.
            match op {
                BinOp::LogAnd => {
                    return Some(if eval(l)? == 0 {
                        0
                    } else {
                        i32::from(eval(r)? != 0)
                    });
                }
                BinOp::LogOr => {
                    return Some(if eval(l)? != 0 {
                        1
                    } else {
                        i32::from(eval(r)? != 0)
                    });
                }
                _ => {}
            }
            let a = eval(l)?;
            let b = eval(r)?;
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                BinOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
                BinOp::Shr => a >> (b as u32 & 31),
                BinOp::Eq => i32::from(a == b),
                BinOp::Ne => i32::from(a != b),
                BinOp::Lt => i32::from(a < b),
                BinOp::Le => i32::from(a <= b),
                BinOp::Gt => i32::from(a > b),
                BinOp::Ge => i32::from(a >= b),
                BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
            }
        }
        other => unreachable!("generator does not produce {other:?}"),
    })
}

/// Renders the expression back to PXC source.
fn render(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => {
            if *v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }
        ExprKind::Var(name) => name.clone(),
        ExprKind::Un(UnOp::Neg, x) => format!("(-{})", render(x)),
        ExprKind::Un(UnOp::Not, x) => format!("(!{})", render(x)),
        ExprKind::Bin(op, l, r) => {
            let op_str = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::LogAnd => "&&",
                BinOp::LogOr => "||",
            };
            format!("({} {} {})", render(l), op_str, render(r))
        }
        other => unreachable!("generator does not produce {other:?}"),
    }
}

fn run_expr(e: &Expr) -> Result<i32, RunExit> {
    let decls: String = VARS
        .iter()
        .map(|(n, v)| format!("    int {n} = {v};\n"))
        .collect();
    let src = format!(
        "int main() {{\n{decls}    int result = {};\n    printint(result);\n    return 0;\n}}\n",
        render(e)
    );
    let compiled = compile(&src, &CompileOptions::default())
        .unwrap_or_else(|err| panic!("generated source must compile: {err}\n{src}"));
    let r = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::default(),
        5_000_000,
    );
    match r.exit {
        RunExit::Exited(0) => Ok(r.io.output_string().parse().expect("printint output")),
        other => Err(other),
    }
}

px_prop! {
    cases = 192;

    fn compiled_expressions_match_the_oracle(e in arb_expr()) {
        match (eval(&e), run_expr(&e)) {
            (Some(expected), Ok(actual)) => {
                assert_eq!(expected, actual, "expression: {}", render(&e));
            }
            (None, Err(RunExit::Crashed(_))) => {
                // Division by zero: both sides crash. OK.
            }
            (oracle, machine) => {
                panic!(
                    "divergence on {}: oracle {oracle:?}, machine {machine:?}",
                    render(&e)
                );
            }
        }
    }

    fn fix_instructions_never_change_program_results(e in arb_expr()) {
        // The same expression compiled with and without §4.4 fix insertion
        // must behave identically when run normally (fixes are NOPs off the
        // NT-path).
        let decls: String = VARS
            .iter()
            .map(|(n, v)| format!("    int {n} = {v};\n"))
            .collect();
        let src = format!(
            "int main() {{\n{decls}    int r = {};\n    printint(r);\n    return 0;\n}}\n",
            render(&e)
        );
        let with = compile(&src, &CompileOptions::default()).expect("compiles");
        let without = compile(
            &src,
            &CompileOptions { insert_fixes: false, ..CompileOptions::default() },
        )
        .expect("compiles");
        let run = |p: &px_isa::Program| {
            let r = run_baseline(p, &MachConfig::single_core(), IoState::default(), 5_000_000);
            (format!("{:?}", r.exit), r.io.output_string())
        };
        assert_eq!(run(&with.program), run(&without.program));
    }
}
