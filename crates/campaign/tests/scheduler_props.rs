//! Scheduler-determinism properties: whatever the worker count, block size
//! or (seeded) kill point, the same manifest produces the same set of case
//! records — identical NDJSON modulo ordering — and the same merged
//! coverage/aggregate digest.

use px_campaign::{run, CampaignConfig, Manifest};
use px_util::px_prop;

fn journal_case_lines(cfg: &CampaignConfig) -> Vec<String> {
    let text = std::fs::read_to_string(&cfg.journal).unwrap();
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| l.contains("\"t\":\"case\""))
        .map(str::to_owned)
        .collect();
    lines.sort();
    lines
}

fn cfg_for(name: &str, manifest: &str, workers: usize, block: usize) -> CampaignConfig {
    let journal =
        std::env::temp_dir().join(format!("px-sched-{}-{name}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let mut c = CampaignConfig::new(Manifest::parse(manifest).unwrap(), journal);
    c.timeout = 10_000;
    c.workers = workers;
    c.block = block;
    c.checkpoint_every = 7;
    c
}

fn cleanup(c: &CampaignConfig) {
    let _ = std::fs::remove_file(&c.journal);
    let mut q = c.journal.as_os_str().to_owned();
    q.push(".quarantine");
    let _ = std::fs::remove_file(std::path::PathBuf::from(q));
}

px_prop! {
    cases = 8;

    fn same_manifest_same_records_any_schedule(
        workers in 1u32..5,
        block in 1u32..9,
        chaos_seed in 1u64..50,
    ) {
        let manifest = format!("chaos:{chaos_seed}:12+fault:2:6");
        let a = cfg_for(&format!("a{workers}-{block}-{chaos_seed}"), &manifest, 1, 4);
        let b = cfg_for(
            &format!("b{workers}-{block}-{chaos_seed}"),
            &manifest,
            workers as usize,
            block as usize,
        );
        let ra = run(&a).unwrap();
        let rb = run(&b).unwrap();
        assert!(ra.complete() && rb.complete());
        // Same NDJSON case records, modulo completion order.
        assert_eq!(journal_case_lines(&a), journal_case_lines(&b));
        // Same aggregate (and thus merged-coverage) digest.
        assert_eq!(ra.digest(), rb.digest());
        cleanup(&a);
        cleanup(&b);
    }

    fn kill_points_never_change_the_final_digest(
        kill in 1u64..17,
        workers in 1u32..4,
    ) {
        let manifest = "chaos:9:18";
        let straight = cfg_for(&format!("s{kill}-{workers}"), manifest, 2, 4);
        let want = run(&straight).unwrap();
        assert!(want.complete());

        let mut c = cfg_for(&format!("k{kill}-{workers}"), manifest, workers as usize, 4);
        c.kill_after = Some(kill);
        let partial = run(&c).unwrap();
        assert!(partial.interrupted);
        c.kill_after = None;
        let resumed = run(&c).unwrap();
        assert!(resumed.complete());
        assert_eq!(resumed.digest(), want.digest());
        assert_eq!(resumed.resumed + resumed.ran, 18);
        cleanup(&straight);
        cleanup(&c);
    }
}

/// Zoo campaigns merge coverage shards identically across schedules (the
/// costly case — full program runs — so it sits outside the property loop).
#[test]
fn zoo_coverage_merges_identically_across_schedules() {
    let manifest = "zoo:parser:3*2+zoo:state-machine:1";
    let a = cfg_for("zoo-seq", manifest, 1, 1);
    let b = cfg_for("zoo-par", manifest, 3, 2);
    let ra = run(&a).unwrap();
    let rb = run(&b).unwrap();
    assert!(ra.complete() && rb.complete());
    assert!(
        !ra.aggregate.coverage.is_empty(),
        "zoo cases shard coverage"
    );
    assert_eq!(
        ra.aggregate.coverage.keys().collect::<Vec<_>>(),
        rb.aggregate.coverage.keys().collect::<Vec<_>>()
    );
    assert_eq!(ra.digest(), rb.digest());
    assert_eq!(journal_case_lines(&a), journal_case_lines(&b));
    cleanup(&a);
    cleanup(&b);
}
