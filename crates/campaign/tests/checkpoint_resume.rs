//! Crash-safety acceptance tests: kill a campaign at seeded points, resume
//! it, and demand the resumed aggregate digest be byte-identical to an
//! uninterrupted run's — with zero lost cases and a quarantine that matches
//! the chaos generator's ground truth.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use px_campaign::runner::chaos_truth;
use px_campaign::{run, run_with_shutdown, CampaignConfig, CampaignError, CaseOutcome, Manifest};
use px_util::{Rng, SplitMix64};

/// The test campaign: hostile chaos cases plus real fault-injection cases,
/// under a watchdog tight enough to keep runaways cheap.
const MANIFEST: &str = "chaos:3:40+fault:5:12";
const TIMEOUT: u64 = 10_000;

fn cfg(name: &str) -> CampaignConfig {
    let journal =
        std::env::temp_dir().join(format!("px-campaign-{}-{name}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let mut c = CampaignConfig::new(Manifest::parse(MANIFEST).unwrap(), journal);
    c.timeout = TIMEOUT;
    c.workers = 2;
    c.checkpoint_every = 8;
    c
}

fn cleanup(c: &CampaignConfig) {
    let _ = std::fs::remove_file(&c.journal);
    let mut q = c.journal.as_os_str().to_owned();
    q.push(".quarantine");
    let _ = std::fs::remove_file(PathBuf::from(q));
}

fn uninterrupted_digest() -> u64 {
    let c = cfg("straight");
    let report = run(&c).unwrap();
    assert!(report.complete());
    let digest = report.digest();
    cleanup(&c);
    digest
}

#[test]
fn killed_campaigns_resume_to_an_identical_digest() {
    let want = uninterrupted_digest();
    let total = Manifest::parse(MANIFEST).unwrap().total();

    // Seeded random kill points, including a checkpoint boundary (8).
    let mut rng = SplitMix64::new(0xDEAD_BEEF);
    let mut kills: Vec<u64> = (0..3).map(|_| rng.range_u64(1, total - 1)).collect();
    kills.push(8);
    for (i, kill) in kills.into_iter().enumerate() {
        let mut c = cfg(&format!("kill{i}"));
        c.kill_after = Some(kill);
        let partial = run(&c).unwrap();
        assert!(partial.interrupted, "kill_after {kill} must interrupt");
        assert!(!partial.complete());
        assert_eq!(partial.ran, kill);

        // Resume with a clean config: same campaign, no kill.
        c.kill_after = None;
        let resumed = run(&c).unwrap();
        assert!(resumed.complete(), "resume finishes the manifest");
        assert_eq!(resumed.resumed + resumed.ran, total, "zero lost cases");
        assert!(resumed.resumed >= kill, "journal kept the pre-kill work");
        assert_eq!(
            resumed.digest(),
            want,
            "kill at {kill} + resume must reproduce the uninterrupted digest"
        );
        cleanup(&c);
    }
}

#[test]
fn shutdown_flag_drains_gracefully_and_resumes() {
    let want = uninterrupted_digest();
    let c = cfg("sigint");
    // The flag is already high: the run stops at the first drained result,
    // writes a final checkpoint, and stays resumable.
    let flag = AtomicBool::new(true);
    let partial = run_with_shutdown(&c, &flag).unwrap();
    assert!(partial.interrupted);
    assert!(!partial.complete());

    let state = px_campaign::journal::load(&c.journal).unwrap();
    assert!(!state.torn, "graceful shutdown leaves no torn tail");
    assert!(state.checkpoints > 0, "graceful shutdown checkpoints");

    flag.store(false, Ordering::SeqCst);
    let resumed = run_with_shutdown(&c, &flag).unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.digest(), want);
    cleanup(&c);
}

#[test]
fn quarantine_matches_chaos_ground_truth() {
    let c = cfg("truth");
    let report = run(&c).unwrap();
    assert!(report.complete());

    let truth = chaos_truth(3, 40);
    let want_panicked = truth
        .iter()
        .filter(|o| **o == CaseOutcome::Panicked)
        .count() as u64;
    let want_timed_out = truth
        .iter()
        .filter(|o| **o == CaseOutcome::TimedOut)
        .count() as u64;
    assert!(
        want_panicked > 0 && want_timed_out > 0,
        "chaos mix is hostile"
    );
    assert_eq!(report.aggregate.of(CaseOutcome::Panicked), want_panicked);
    // Fault cases under a 10k watchdog may time out too; chaos provides the
    // floor, and every chaos runaway must be quarantined.
    assert!(report.aggregate.of(CaseOutcome::TimedOut) >= want_timed_out);
    for (local, want) in truth.iter().enumerate() {
        let rec = report.quarantined.iter().find(|r| r.id == local as u64);
        match want {
            CaseOutcome::Done => assert!(rec.is_none(), "chaos case {local} is clean"),
            other => {
                let rec = rec.unwrap_or_else(|| panic!("chaos case {local} must be quarantined"));
                assert_eq!(rec.outcome, *other, "chaos case {local}");
            }
        }
    }

    // The quarantine file exists, one line per quarantined case, each with
    // a replay command that regenerates the same record.
    let mut qpath = c.journal.as_os_str().to_owned();
    qpath.push(".quarantine");
    let text = std::fs::read_to_string(PathBuf::from(&qpath)).unwrap();
    assert_eq!(text.lines().count(), report.quarantined.len());
    assert!(text.contains("pxc campaign --cases"));

    // Replay one quarantined case by id: same outcome.
    let first = &report.quarantined[0];
    let replayed = px_campaign::run_only(&c.manifest, TIMEOUT, first.id);
    assert_eq!(replayed.outcome, first.outcome);
    assert_eq!(replayed.case, first.case);
    cleanup(&c);
}

#[test]
fn foreign_journals_are_rejected() {
    let c = cfg("mismatch");
    run(&c).unwrap();
    let mut other = c.clone();
    other.timeout = TIMEOUT * 2;
    let err = run(&other).unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch(_)), "{err}");
    cleanup(&c);
}

#[test]
fn quarantine_limit_aborts_resumably() {
    let mut c = cfg("limit");
    c.max_quarantine = Some(2);
    let partial = run(&c).unwrap();
    assert!(partial.quarantine_limit_hit);
    assert!(partial.interrupted);
    assert!(!partial.complete());

    // Raising the limit and resuming still completes to the right digest.
    c.max_quarantine = None;
    let resumed = run(&c).unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.digest(), uninterrupted_digest());
    cleanup(&c);
}
