//! Typed per-case outcomes, journal case records, and the order-insensitive
//! campaign aggregate.
//!
//! A campaign's headline guarantee is that *every case is accounted for*:
//! each one ends in exactly one [`CaseOutcome`], is written to the journal
//! as a [`CaseRecord`], and folds into the [`Aggregate`] through commutative
//! operations only (counts, XOR/sum of per-case digests, bitmap-union
//! coverage merges) — so the final [`Aggregate::digest`] is byte-identical
//! no matter how the work-stealing pool interleaved the cases, and a
//! killed-and-resumed run reproduces an uninterrupted run's digest exactly.

use std::collections::BTreeMap;

use px_mach::Coverage;
use px_util::{fnv1a64, from_hex, hex64, to_hex, Json, ToJson};

use crate::CampaignError;

/// How one campaign case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The case ran to completion (its run may still have crashed the
    /// *simulated* program — that is a normal result, not a failure).
    Done,
    /// The case's closure panicked; the panic was contained and the case
    /// quarantined.
    Panicked,
    /// The instruction-budget watchdog cut the case short; quarantined.
    TimedOut,
    /// The differential containment check failed; quarantined.
    Violated,
}

impl CaseOutcome {
    /// Every outcome, in canonical order.
    pub const ALL: [CaseOutcome; 4] = [
        CaseOutcome::Done,
        CaseOutcome::Panicked,
        CaseOutcome::TimedOut,
        CaseOutcome::Violated,
    ];

    /// Canonical name as spelled in journal records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseOutcome::Done => "done",
            CaseOutcome::Panicked => "panicked",
            CaseOutcome::TimedOut => "timed-out",
            CaseOutcome::Violated => "violated",
        }
    }

    /// Parses a canonical outcome name.
    #[must_use]
    pub fn parse(name: &str) -> Option<CaseOutcome> {
        CaseOutcome::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Whether this outcome sends the case to quarantine.
    #[must_use]
    pub fn quarantines(self) -> bool {
        !matches!(self, CaseOutcome::Done)
    }
}

/// One case's journal record. Every field is a pure function of
/// `(manifest, case id, case timeout)` — no timestamps, no machine state —
/// so records are byte-identical across runs, workers and resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRecord {
    /// Global case index within the manifest.
    pub id: u64,
    /// The case's coordinates: `<generator>#<local index>`.
    pub case: String,
    /// How the case ended.
    pub outcome: CaseOutcome,
    /// Exit class of the simulated run (`-` when the case never ran one).
    pub exit: String,
    /// Faults the case's plan injected (fault cases).
    pub faults: u64,
    /// NT-paths completed.
    pub nt_paths: u64,
    /// True-positive bug detections (zoo cases).
    pub detections: u64,
    /// Branch edges covered (zoo cases).
    pub covered_edges: u64,
    /// Key of the coverage shard this case contributes to (empty = none).
    pub program_key: String,
    /// Code length the shard's bitmap was built for (0 = none).
    pub code_len: u64,
    /// Packed coverage bitmap ([`Coverage::pack_bits`]; empty = none).
    pub cov_bits: Vec<u8>,
    /// Panic message / violation summary / empty.
    pub detail: String,
}

impl CaseRecord {
    /// A record for a case whose closure panicked.
    #[must_use]
    pub fn panicked(id: u64, case: String, message: String) -> CaseRecord {
        CaseRecord {
            id,
            case,
            outcome: CaseOutcome::Panicked,
            exit: "-".to_owned(),
            faults: 0,
            nt_paths: 0,
            detections: 0,
            covered_edges: 0,
            program_key: String::new(),
            code_len: 0,
            cov_bits: Vec::new(),
            detail: message,
        }
    }

    fn body_json(&self) -> Json {
        Json::obj([
            ("t", "case".to_json()),
            ("id", self.id.to_json()),
            ("case", self.case.to_json()),
            ("outcome", self.outcome.name().to_json()),
            ("exit", self.exit.to_json()),
            ("faults", self.faults.to_json()),
            ("nt_paths", self.nt_paths.to_json()),
            ("detections", self.detections.to_json()),
            ("covered_edges", self.covered_edges.to_json()),
            ("program_key", self.program_key.to_json()),
            ("code_len", self.code_len.to_json()),
            ("cov", Json::Str(to_hex(&self.cov_bits))),
            ("detail", self.detail.to_json()),
        ])
    }

    /// The record's FNV-1a-64 digest — the unit every aggregate digest is
    /// built from, and the per-record integrity check on resume.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a64(0, self.body_json().dump().as_bytes())
    }

    /// The journal line for this record (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let Json::Obj(mut pairs) = self.body_json() else {
            unreachable!("body_json builds an object")
        };
        pairs.push(("digest".to_owned(), Json::Str(hex64(self.digest()))));
        Json::Obj(pairs).dump()
    }

    /// Parses a journal case record and verifies its stored digest.
    ///
    /// # Errors
    ///
    /// A human-readable description of the missing field, bad value or
    /// digest mismatch (the caller attaches the line number).
    pub fn from_json(v: &Json) -> Result<CaseRecord, String> {
        let field_u64 = |k: &str| -> Result<u64, String> { req(v, k)?.as_u64().ok_or(bad(k)) };
        let field_str = |k: &str| -> Result<String, String> {
            Ok(req(v, k)?.as_str().ok_or_else(|| bad(k))?.to_owned())
        };
        let outcome_name = field_str("outcome")?;
        let rec = CaseRecord {
            id: field_u64("id")?,
            case: field_str("case")?,
            outcome: CaseOutcome::parse(&outcome_name)
                .ok_or_else(|| format!("unknown outcome `{outcome_name}`"))?,
            exit: field_str("exit")?,
            faults: field_u64("faults")?,
            nt_paths: field_u64("nt_paths")?,
            detections: field_u64("detections")?,
            covered_edges: field_u64("covered_edges")?,
            program_key: field_str("program_key")?,
            code_len: field_u64("code_len")?,
            cov_bits: from_hex(&field_str("cov")?).ok_or(bad("cov"))?,
            detail: field_str("detail")?,
        };
        let stored = field_str("digest")?;
        if hex64(rec.digest()) != stored {
            return Err(format!(
                "case {} record digest mismatch (stored {stored}, computed {})",
                rec.id,
                hex64(rec.digest())
            ));
        }
        Ok(rec)
    }
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn bad(key: &str) -> String {
    format!("bad value for field `{key}`")
}

/// The campaign aggregate: pure commutative folds over case records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Cases absorbed.
    pub total: u64,
    /// Count per [`CaseOutcome`] (indexed in `CaseOutcome::ALL` order).
    pub outcomes: [u64; 4],
    /// Total faults injected.
    pub faults: u64,
    /// Total NT-paths completed.
    pub nt_paths: u64,
    /// Total true-positive detections.
    pub detections: u64,
    /// Total covered edges (sum over cases, pre-merge).
    pub covered_edges: u64,
    /// `(exit class, count)` histogram.
    pub exits: BTreeMap<String, u64>,
    /// XOR of per-case digests (order-insensitive identity check).
    pub case_xor: u64,
    /// Wrapping sum of per-case digests (catches XOR-cancelling pairs).
    pub case_sum: u64,
    /// Merged coverage shards, keyed by program (`Coverage::merge` union).
    pub coverage: BTreeMap<String, Coverage>,
}

impl Aggregate {
    /// Folds one case record in. Commutative: any absorption order yields
    /// the same aggregate.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Corrupt`] when a coverage shard does not unpack or
    /// does not merge (foreign `code_len` under a known key).
    pub fn absorb(&mut self, rec: &CaseRecord) -> Result<(), CampaignError> {
        self.total += 1;
        let slot = CaseOutcome::ALL
            .iter()
            .position(|o| *o == rec.outcome)
            .expect("every outcome is in ALL");
        self.outcomes[slot] += 1;
        self.faults += rec.faults;
        self.nt_paths += rec.nt_paths;
        self.detections += rec.detections;
        self.covered_edges += rec.covered_edges;
        *self.exits.entry(rec.exit.clone()).or_insert(0) += 1;
        let d = rec.digest();
        self.case_xor ^= d;
        self.case_sum = self.case_sum.wrapping_add(d);
        if !rec.program_key.is_empty() {
            let corrupt = |e: px_mach::SimError| CampaignError::Corrupt {
                line: rec.id,
                why: format!("case {} coverage shard: {e}", rec.id),
            };
            let shard =
                Coverage::unpack_bits(rec.code_len as usize, &rec.cov_bits).map_err(corrupt)?;
            match self.coverage.get_mut(&rec.program_key) {
                Some(merged) => merged.merge(&shard).map_err(corrupt)?,
                None => {
                    self.coverage.insert(rec.program_key.clone(), shard);
                }
            }
        }
        Ok(())
    }

    /// Cases in quarantine (every non-`Done` outcome).
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.outcomes[1] + self.outcomes[2] + self.outcomes[3]
    }

    /// Count for one outcome.
    #[must_use]
    pub fn of(&self, outcome: CaseOutcome) -> u64 {
        let slot = CaseOutcome::ALL
            .iter()
            .position(|o| *o == outcome)
            .expect("every outcome is in ALL");
        self.outcomes[slot]
    }

    /// The canonical JSON the digest is computed over: counts, sorted
    /// histograms, commutative digest accumulators, and per-program merged
    /// coverage digests.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", "px-campaign/aggregate-v1".to_json()),
            ("total", self.total.to_json()),
            ("done", self.of(CaseOutcome::Done).to_json()),
            ("panicked", self.of(CaseOutcome::Panicked).to_json()),
            ("timed_out", self.of(CaseOutcome::TimedOut).to_json()),
            ("violated", self.of(CaseOutcome::Violated).to_json()),
            ("quarantined", self.quarantined().to_json()),
            ("faults", self.faults.to_json()),
            ("nt_paths", self.nt_paths.to_json()),
            ("detections", self.detections.to_json()),
            ("covered_edges", self.covered_edges.to_json()),
            (
                "exits",
                Json::Arr(
                    self.exits
                        .iter()
                        .map(|(class, n)| {
                            Json::obj([("class", class.to_json()), ("n", n.to_json())])
                        })
                        .collect(),
                ),
            ),
            ("case_xor", Json::Str(hex64(self.case_xor))),
            ("case_sum", Json::Str(hex64(self.case_sum))),
            (
                "coverage",
                Json::Arr(
                    self.coverage
                        .iter()
                        .map(|(key, cov)| {
                            Json::obj([
                                ("key", key.to_json()),
                                ("digest", Json::Str(hex64(fnv1a64(0, &cov.pack_bits())))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The aggregate digest — the single number two runs of the same
    /// manifest must agree on byte-for-byte.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a64(0, self.to_json().dump().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, outcome: CaseOutcome) -> CaseRecord {
        CaseRecord {
            id,
            case: format!("chaos:1:8#{id}"),
            outcome,
            exit: if outcome == CaseOutcome::Done {
                "exited".to_owned()
            } else {
                "-".to_owned()
            },
            faults: id,
            nt_paths: 2,
            detections: 0,
            covered_edges: 0,
            program_key: String::new(),
            code_len: 0,
            cov_bits: Vec::new(),
            detail: String::new(),
        }
    }

    #[test]
    fn record_lines_round_trip_with_digest() {
        let rec = record(7, CaseOutcome::TimedOut);
        let line = rec.to_line();
        let v = px_util::json::parse(&line).unwrap();
        let back = CaseRecord::from_json(&v).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn tampered_records_fail_the_digest_check() {
        let line = record(7, CaseOutcome::Done).to_line();
        let tampered = line.replace("\"faults\":7", "\"faults\":8");
        assert_ne!(line, tampered);
        let v = px_util::json::parse(&tampered).unwrap();
        let err = CaseRecord::from_json(&v).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn aggregate_is_order_insensitive() {
        let recs: Vec<CaseRecord> = (0..16)
            .map(|i| record(i, CaseOutcome::ALL[(i % 4) as usize]))
            .collect();
        let mut forward = Aggregate::default();
        for r in &recs {
            forward.absorb(r).unwrap();
        }
        let mut backward = Aggregate::default();
        for r in recs.iter().rev() {
            backward.absorb(r).unwrap();
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.digest(), backward.digest());
        assert_eq!(forward.quarantined(), 12);
        assert_eq!(forward.of(CaseOutcome::Done), 4);
    }

    #[test]
    fn coverage_shards_merge_by_program_key() {
        let mut a = record(0, CaseOutcome::Done);
        a.program_key = "zoo:parser:1/ccured".to_owned();
        a.code_len = 8;
        let mut cov_a = Coverage::new(8);
        cov_a.record(0, px_mach::Edge::Taken);
        a.cov_bits = cov_a.pack_bits();

        let mut b = record(1, CaseOutcome::Done);
        b.program_key = a.program_key.clone();
        b.code_len = 8;
        let mut cov_b = Coverage::new(8);
        cov_b.record(3, px_mach::Edge::NotTaken);
        b.cov_bits = cov_b.pack_bits();

        let mut agg = Aggregate::default();
        agg.absorb(&a).unwrap();
        agg.absorb(&b).unwrap();
        let merged = &agg.coverage["zoo:parser:1/ccured"];
        let mut want = cov_a.clone();
        want.merge(&cov_b).unwrap();
        assert_eq!(*merged, want);

        // A shard with a foreign code_len under the same key is corrupt.
        let mut c = record(2, CaseOutcome::Done);
        c.program_key = a.program_key.clone();
        c.code_len = 4;
        c.cov_bits = Coverage::new(4).pack_bits();
        assert!(matches!(agg.absorb(&c), Err(CampaignError::Corrupt { .. })));
    }

    #[test]
    fn outcome_names_round_trip() {
        for o in CaseOutcome::ALL {
            assert_eq!(CaseOutcome::parse(o.name()), Some(o));
        }
        assert_eq!(CaseOutcome::parse("wedged"), None);
        assert!(CaseOutcome::Panicked.quarantines());
        assert!(!CaseOutcome::Done.quarantines());
    }
}
