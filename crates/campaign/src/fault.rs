//! The **fault-injection campaign** (robustness experiment E12): prove that
//! the sandbox contains everything.
//!
//! Each case draws a program, an engine (baseline / standard / CMP /
//! feasibility), a machine + PathExpander configuration and a seeded
//! [`FaultPlan`] from one campaign seed, runs it, and — for the PathExpander
//! engines — diffs the committed state against a plain, un-faulted baseline
//! with [`pathexpander::check_containment`]. The paper's §4.2(2)/§4.3
//! guarantee under test: whatever happens inside an NT-path (bit flips,
//! forced exceptions, runaway loops, vtag corruption, monitor pressure,
//! I/O errors), the committed run is bit-identical to one without
//! PathExpander, and no engine ever panics.
//!
//! Every case is replayable: the summary records the per-case fault seed,
//! and [`run_case`] regenerates case `i` of campaign seed `s` exactly.
//!
//! This module lives in `px-campaign` (it moved here from the bench
//! harness) so the crash-safe campaign runner, the `fault_campaign` binary
//! and `pxc campaign` all share one implementation; `px_bench::experiments::
//! fault` re-exports it, so existing import paths keep working. The
//! watchdog-guarded entry points ([`run_case_guarded`],
//! [`run_campaign_guarded`]) wrap the same case logic — the RNG draw stream
//! is untouched by the budget parameter, so the classic summary stays
//! byte-identical to its pinned golden.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pathexpander::{differential_run, measure_latency_with, PxConfig};
use px_isa::asm::assemble;
use px_isa::Program;
use px_mach::{run_baseline_with, CacheConfig, FaultMix, FaultPlan, IoState, MachConfig, RunExit};
use px_util::{Json, Rng, SplitMix64, ToJson};

use crate::outcome::CaseOutcome;
use crate::watchdog::Watchdog;

/// Instruction budget per campaign case — small enough that 256 cases stay
/// in test-suite time, large enough that NT-paths spawn and faults land.
pub const CASE_BUDGET: u64 = 60_000;

/// The four engines every campaign exercises.
pub const ENGINES: [&str; 4] = ["baseline", "standard", "cmp", "feasibility"];

/// A small pool of assembly templates, each exercising a different corner of
/// the sandbox: NT-edge bugs, NT stores that must roll back, I/O on both
/// paths, runaway NT loops, and store sweeps that pressure the L1.
const PROGRAMS: [(&str, &str, &[u8]); 5] = [
    (
        "nt-bug",
        r"
        .code
        main:
            li r1, 1
            bne r1, zero, ok
            li r3, 0
            assert r3, #77
            li r6, 80
        ntspin:
            subi r6, r6, 1
            bgt r6, zero, ntspin
            jmp ok
        ok:
            li r4, 60
        loop:
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
        ",
        b"",
    ),
    (
        "nt-store",
        r"
        .data
        g: .word 7
        h: .word 13
        .code
        main:
            li r1, 1
            bne r1, zero, ok
            la r5, g
            li r6, 999
            sw r6, 0(r5)
            sw r6, 4(r5)
            jmp ok
        ok:
            li r4, 40
        loop:
            subi r4, r4, 1
            bgt r4, zero, loop
            la r5, g
            lw r2, 0(r5)
            printi
            lw r2, 4(r5)
            printi
            li r2, 0
            exit
        ",
        b"",
    ),
    (
        "io-echo",
        r"
        .code
        main:
            li r4, 3
        loop:
            readi
            mv r2, r1
            blt r2, zero, neg
            printi
            jmp next
        neg:
            li r2, 45
            putc
        next:
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
        ",
        b"5 -3 11",
    ),
    (
        "nt-runaway",
        r"
        .code
        main:
            li r1, 1
            bne r1, zero, ok
        spin:
            addi r8, r8, 1
            jmp spin
        ok:
            li r4, 50
        loop:
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
        ",
        b"",
    ),
    (
        "mem-walk",
        r"
        .data
        base: .word 0
        .code
        main:
            li r1, 1
            la r9, base
            li r4, 90
        loop:
            bne r1, zero, work
            sw r4, 64(r9)
            sw r4, 96(r9)
        work:
            sw r4, 0(r9)
            addi r9, r9, 4
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
        ",
        b"",
    ),
];

/// The outcome of one campaign case.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Case index within the campaign.
    pub id: u64,
    /// Engine exercised.
    pub engine: String,
    /// Program template name.
    pub program: String,
    /// The fault plan's seed — replays this case's injection stream.
    pub fault_seed: u64,
    /// Injection period (one fault roughly every `period` steps).
    pub period: u32,
    /// Exit class of the run (`exited` / `crashed` / `budget` /
    /// `engine-fault`).
    pub exit: String,
    /// Faults the plan delivered.
    pub faults: u64,
    /// NT-paths completed (0 for baseline).
    pub nt_paths: u64,
    /// Containment violations (empty for baseline / feasibility cases,
    /// which only assert panic-freedom).
    pub violations: Vec<String>,
}

impl ToJson for FaultCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("engine", self.engine.to_json()),
            ("program", self.program.to_json()),
            ("fault_seed", self.fault_seed.to_json()),
            ("period", self.period.to_json()),
            ("exit", self.exit.to_json()),
            ("faults", self.faults.to_json()),
            ("nt_paths", self.nt_paths.to_json()),
            ("violations", self.violations.to_json()),
        ])
    }
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Campaign seed.
    pub seed: u64,
    /// Cases run.
    pub cases: u64,
    /// The fault mix, in its canonical spec form.
    pub mix: String,
    /// Total faults injected across all cases.
    pub faults_injected: u64,
    /// Cases whose containment check passed (or that only assert
    /// panic-freedom and returned).
    pub contained: u64,
    /// `(exit class, count)` histogram across cases.
    pub exits: Vec<(String, u64)>,
    /// Cases that violated containment, with full replay coordinates.
    pub violating: Vec<FaultCase>,
}

impl CampaignSummary {
    /// Whether the sandbox contained every case.
    #[must_use]
    pub fn all_contained(&self) -> bool {
        self.violating.is_empty()
    }
}

impl ToJson for CampaignSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("cases", self.cases.to_json()),
            ("mix", self.mix.to_json()),
            ("faults_injected", self.faults_injected.to_json()),
            ("contained", self.contained.to_json()),
            (
                "exits",
                Json::Arr(
                    self.exits
                        .iter()
                        .map(|(class, n)| {
                            Json::obj([("class", class.to_json()), ("n", n.to_json())])
                        })
                        .collect(),
                ),
            ),
            (
                "violating",
                Json::Arr(self.violating.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

fn assemble_template(idx: usize) -> (&'static str, Program, IoState) {
    let (name, src, input) = PROGRAMS[idx % PROGRAMS.len()];
    let program = assemble(src).unwrap_or_else(|e| panic!("campaign template {name}: {e}"));
    (name, program, IoState::new(input.to_vec(), 0xC0FFEE))
}

/// Draws the per-case machine configuration: mostly the paper's Table 2,
/// sometimes a 2-line L1 (sandbox-overflow pressure) or an extra-small BTB
/// (counter-eviction pressure).
fn draw_mach(rng: &mut SplitMix64, cores: usize) -> MachConfig {
    let mut mach = if cores >= 2 {
        MachConfig::default()
    } else {
        MachConfig::single_core()
    };
    if rng.chance(1, 3) {
        mach.l1 = CacheConfig {
            size_bytes: 64,
            assoc: 2,
            line_bytes: 32,
            hit_cycles: 3,
        };
    }
    if rng.chance(1, 4) {
        mach.btb_entries = 64;
        mach.btb_assoc = 2;
    }
    mach
}

fn draw_px(rng: &mut SplitMix64) -> PxConfig {
    let mut px = PxConfig::default()
        .with_max_instructions(CASE_BUDGET)
        .with_max_nt_path_len(*rng.choose(&[50u32, 200, 1000]))
        .with_counter_threshold(*rng.choose(&[1u8, 5]))
        .with_nt_watchdog(*rng.choose(&[64u64, 1_000_000]));
    if rng.chance(1, 3) {
        px = px.with_os_sandbox(true);
    }
    if rng.chance(1, 4) {
        px = px.with_random_factor(Some(8));
    }
    px
}

/// Runs case `id` of the campaign with `seed` and `mix` — exactly what
/// [`run_campaign`] runs, exposed so a violating case can be replayed alone.
#[must_use]
pub fn run_case(seed: u64, id: u64, mix: &FaultMix) -> FaultCase {
    run_case_budget(seed, id, mix, CASE_BUDGET)
}

/// [`run_case`] with an explicit instruction budget (the campaign runner's
/// watchdog clamp). The budget does **not** enter the per-case RNG draw
/// stream: a case run under `budget == CASE_BUDGET` is bit-identical to the
/// historical [`run_case`], which the pinned campaign golden relies on.
#[must_use]
pub fn run_case_budget(seed: u64, id: u64, mix: &FaultMix, budget: u64) -> FaultCase {
    let mut rng = SplitMix64::new(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let fault_seed = rng.next_u64();
    let period = rng.range_u64(2, 9) as u32;
    let engine = ENGINES[(id % 4) as usize];
    let (program_name, program, io) = assemble_template(rng.next_u64() as usize);
    let mut plan = FaultPlan::new(fault_seed, *mix, period);

    let (exit, faults, nt_paths, violations) = match engine {
        "baseline" => {
            // Faults are architectural here — the program may crash or
            // diverge; the property under test is that the *simulator*
            // never panics and never reports an engine fault.
            let mach = draw_mach(&mut rng, 1);
            let r = run_baseline_with(&program, &mach, io, budget, Some(&mut plan));
            let violations = match r.exit {
                RunExit::EngineFault(e) => vec![format!("baseline engine fault: {e}")],
                _ => Vec::new(),
            };
            (r.exit.class().to_owned(), plan.stats.total(), 0, violations)
        }
        "feasibility" => {
            let mach = draw_mach(&mut rng, 1);
            let profile = measure_latency_with(&program, &mach, io, 200, budget, Some(&mut plan));
            (
                "exited".to_owned(),
                plan.stats.total(),
                profile.spawned as u64,
                Vec::new(),
            )
        }
        name => {
            let px = if name == "cmp" {
                draw_px(&mut rng).cmp()
            } else {
                draw_px(&mut rng)
            }
            .with_max_instructions(budget);
            let mach = draw_mach(&mut rng, if name == "cmp" { 4 } else { 1 });
            let (result, report) = differential_run(&program, &mach, &px, io, Some(&mut plan));
            (
                result.exit.class().to_owned(),
                result.stats.faults_injected,
                result.stats.paths.len() as u64,
                report.violations.iter().map(ToString::to_string).collect(),
            )
        }
    };

    FaultCase {
        id,
        engine: engine.to_owned(),
        program: program_name.to_owned(),
        fault_seed,
        period,
        exit,
        faults,
        nt_paths,
        violations,
    }
}

/// Runs a whole campaign: `cases` cases derived from `seed`, injecting
/// faults drawn from `mix`.
///
/// Cases are seeded independently (each derives its own RNG from
/// `seed ^ id`), so they run on the [`px_util::par_map`] worker pool;
/// aggregation walks the results in case-id order, keeping the summary —
/// and its JSON — byte-identical to a sequential run.
#[must_use]
pub fn run_campaign(seed: u64, cases: u64, mix: &FaultMix) -> CampaignSummary {
    let ids: Vec<u64> = (0..cases).collect();
    let results = px_util::par_map(&ids, |&id| run_case(seed, id, mix));

    let mut faults_injected = 0;
    let mut contained = 0;
    let mut exits: Vec<(String, u64)> = Vec::new();
    let mut violating = Vec::new();
    for case in results {
        faults_injected += case.faults;
        if case.violations.is_empty() {
            contained += 1;
        }
        match exits.iter_mut().find(|(class, _)| *class == case.exit) {
            Some((_, n)) => *n += 1,
            None => exits.push((case.exit.clone(), 1)),
        }
        if !case.violations.is_empty() {
            violating.push(case);
        }
    }
    exits.sort();
    CampaignSummary {
        seed,
        cases,
        mix: mix.to_string(),
        faults_injected,
        contained,
        exits,
        violating,
    }
}

/// One case of a watchdog-guarded campaign: the classic [`FaultCase`] (when
/// its closure returned) plus the campaign-runner outcome classification.
#[derive(Debug, Clone)]
pub struct GuardedCase {
    /// Case index within the campaign.
    pub id: u64,
    /// How the case ended.
    pub outcome: CaseOutcome,
    /// Exit class (`-` when the case panicked before producing a run).
    pub exit: String,
    /// Panic message / violation list rendering (empty for clean cases).
    pub detail: String,
}

impl ToJson for GuardedCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("outcome", self.outcome.name().to_json()),
            ("exit", self.exit.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

/// Aggregate result of a watchdog-guarded campaign — what `fault_campaign
/// --case-timeout/--max-quarantine` prints. A separate type from
/// [`CampaignSummary`] so the classic JSON (and its golden) is untouched.
#[derive(Debug, Clone)]
pub struct GuardedSummary {
    /// Campaign seed.
    pub seed: u64,
    /// Cases in the campaign.
    pub cases: u64,
    /// Cases actually run (smaller than `cases` after a quarantine abort).
    pub ran: u64,
    /// The fault mix, in its canonical spec form.
    pub mix: String,
    /// Watchdog timeout (instructions).
    pub timeout: u64,
    /// Total faults injected across run cases.
    pub faults_injected: u64,
    /// Count per outcome, [`CaseOutcome::ALL`] order.
    pub outcomes: [u64; 4],
    /// `(exit class, count)` histogram across run cases.
    pub exits: Vec<(String, u64)>,
    /// Every quarantined case, with replay coordinates.
    pub quarantined: Vec<GuardedCase>,
    /// Whether the `--max-quarantine` limit aborted the campaign.
    pub aborted: bool,
}

impl GuardedSummary {
    /// Count for one outcome.
    #[must_use]
    pub fn of(&self, outcome: CaseOutcome) -> u64 {
        let slot = CaseOutcome::ALL
            .iter()
            .position(|o| *o == outcome)
            .expect("every outcome is in ALL");
        self.outcomes[slot]
    }
}

impl ToJson for GuardedSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", "px-campaign/guarded-fault-v1".to_json()),
            ("seed", self.seed.to_json()),
            ("cases", self.cases.to_json()),
            ("ran", self.ran.to_json()),
            ("mix", self.mix.to_json()),
            ("timeout", self.timeout.to_json()),
            ("faults_injected", self.faults_injected.to_json()),
            ("done", self.of(CaseOutcome::Done).to_json()),
            ("panicked", self.of(CaseOutcome::Panicked).to_json()),
            ("timed_out", self.of(CaseOutcome::TimedOut).to_json()),
            ("violated", self.of(CaseOutcome::Violated).to_json()),
            (
                "exits",
                Json::Arr(
                    self.exits
                        .iter()
                        .map(|(class, n)| {
                            Json::obj([("class", class.to_json()), ("n", n.to_json())])
                        })
                        .collect(),
                ),
            ),
            (
                "quarantined",
                Json::Arr(self.quarantined.iter().map(ToJson::to_json).collect()),
            ),
            ("aborted", self.aborted.to_json()),
        ])
    }
}

/// Runs one campaign case under a watchdog with panic containment and
/// classifies its outcome. The [`FaultCase`] is `None` only for
/// [`CaseOutcome::Panicked`].
#[must_use]
pub fn run_case_guarded(
    seed: u64,
    id: u64,
    mix: &FaultMix,
    wd: &Watchdog,
) -> (Option<FaultCase>, GuardedCase) {
    let budget = wd.clamp(CASE_BUDGET);
    match catch_unwind(AssertUnwindSafe(|| run_case_budget(seed, id, mix, budget))) {
        Ok(case) => {
            let (outcome, detail) = if !case.violations.is_empty() {
                (CaseOutcome::Violated, case.violations.join("; "))
            } else if wd.tripped(CASE_BUDGET, &case.exit) {
                (CaseOutcome::TimedOut, String::new())
            } else {
                (CaseOutcome::Done, String::new())
            };
            let exit = case.exit.clone();
            (
                Some(case),
                GuardedCase {
                    id,
                    outcome,
                    exit,
                    detail,
                },
            )
        }
        Err(payload) => (
            None,
            GuardedCase {
                id,
                outcome: CaseOutcome::Panicked,
                exit: "-".to_owned(),
                detail: px_util::panic_message(payload.as_ref()),
            },
        ),
    }
}

/// Runs a watchdog-guarded campaign: every case under [`run_case_guarded`],
/// aggregated in case-id order; when `max_quarantine` is exceeded the
/// campaign aborts deterministically at that case.
#[must_use]
pub fn run_campaign_guarded(
    seed: u64,
    cases: u64,
    mix: &FaultMix,
    wd: &Watchdog,
    max_quarantine: Option<u64>,
) -> GuardedSummary {
    let ids: Vec<u64> = (0..cases).collect();
    let results = px_util::par_map(&ids, |&id| run_case_guarded(seed, id, mix, wd));

    let mut summary = GuardedSummary {
        seed,
        cases,
        ran: 0,
        mix: mix.to_string(),
        timeout: wd.timeout,
        faults_injected: 0,
        outcomes: [0; 4],
        exits: Vec::new(),
        quarantined: Vec::new(),
        aborted: false,
    };
    for (case, guarded) in results {
        if max_quarantine.is_some_and(|limit| summary.quarantined.len() as u64 > limit) {
            summary.aborted = true;
            break;
        }
        summary.ran += 1;
        let slot = CaseOutcome::ALL
            .iter()
            .position(|o| *o == guarded.outcome)
            .expect("every outcome is in ALL");
        summary.outcomes[slot] += 1;
        if let Some(case) = &case {
            summary.faults_injected += case.faults;
            match summary
                .exits
                .iter_mut()
                .find(|(class, _)| *class == case.exit)
            {
                Some((_, n)) => *n += 1,
                None => summary.exits.push((case.exit.clone(), 1)),
            }
        }
        if guarded.outcome.quarantines() {
            summary.quarantined.push(guarded);
        }
    }
    summary.exits.sort();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_contained_and_deterministic() {
        let mix = FaultMix::uniform();
        let a = run_campaign(7, 16, &mix);
        assert!(a.all_contained(), "violations: {:?}", a.violating);
        assert_eq!(a.contained, 16);
        assert!(a.faults_injected > 0, "the mix must actually fire");
        let b = run_campaign(7, 16, &mix);
        assert_eq!(a.to_json().dump(), b.to_json().dump());
    }

    #[test]
    fn case_replay_matches_campaign() {
        let mix = FaultMix::parse("bitflip,crash=2,runaway").unwrap();
        let from_campaign = run_campaign(11, 8, &mix);
        let replayed = run_case(11, 5, &mix);
        assert_eq!(from_campaign.cases, 8);
        // Replaying case 5 alone reproduces its coordinates exactly.
        let direct = run_case(11, 5, &mix);
        assert_eq!(replayed.fault_seed, direct.fault_seed);
        assert_eq!(replayed.exit, direct.exit);
        assert_eq!(replayed.faults, direct.faults);
    }

    #[test]
    fn all_four_engines_appear() {
        let mix = FaultMix::uniform();
        let mut seen: Vec<String> = (0..4).map(|id| run_case(3, id, &mix).engine).collect();
        seen.sort();
        let mut want: Vec<String> = ENGINES.iter().map(|s| (*s).to_owned()).collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn default_budget_matches_the_classic_case() {
        let mix = FaultMix::uniform();
        for id in 0..4 {
            let classic = run_case(21, id, &mix);
            let budgeted = run_case_budget(21, id, &mix, CASE_BUDGET);
            assert_eq!(classic.to_json().dump(), budgeted.to_json().dump());
        }
    }

    #[test]
    fn tight_watchdog_times_cases_out() {
        let mix = FaultMix::uniform();
        let wd = Watchdog { timeout: 500 };
        let summary = run_campaign_guarded(7, 16, &mix, &wd, None);
        assert_eq!(summary.ran, 16);
        assert!(
            summary.of(CaseOutcome::TimedOut) > 0,
            "a 500-instruction watchdog must trip: {summary:?}"
        );
        assert_eq!(summary.of(CaseOutcome::Panicked), 0);
        assert_eq!(summary.of(CaseOutcome::Violated), 0);
        // Guarded campaigns are deterministic too.
        let again = run_campaign_guarded(7, 16, &mix, &wd, None);
        assert_eq!(summary.to_json().dump(), again.to_json().dump());
    }

    #[test]
    fn generous_watchdog_changes_nothing() {
        let mix = FaultMix::uniform();
        let wd = Watchdog::default_budget();
        let summary = run_campaign_guarded(9, 8, &mix, &wd, None);
        assert_eq!(summary.of(CaseOutcome::Done), 8);
        assert_eq!(summary.quarantined.len(), 0);
        let classic = run_campaign(9, 8, &mix);
        assert_eq!(summary.faults_injected, classic.faults_injected);
    }
}
