//! The campaign driver: work-stealing execution + journal + quarantine.
//!
//! [`run`] shards the manifest's pending cases (everything minus what a
//! resumed journal already holds) across [`px_util::run_stealing`]'s
//! per-worker deques, wraps every case in `catch_unwind` so panicking and
//! runaway cases become quarantine records instead of a dead campaign,
//! streams each finished [`CaseRecord`] through the bounded result channel
//! onto the caller's thread — the only thread that touches the journal —
//! and folds them into the commutative [`Aggregate`]. Every
//! `checkpoint_every` records it appends an fsynced checkpoint; a SIGINT
//! (or any trip of the shutdown flag) drains in-flight cases, writes a
//! final checkpoint and exits resumable.
//!
//! Crash recovery is tested in-process: `kill_after` simulates a SIGKILL by
//! ceasing all journal writes mid-run (leaving a deliberately torn tail),
//! and the resume path must then reproduce an uninterrupted run's aggregate
//! digest byte-for-byte.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use px_util::{hex64, Json, PoolConfig, ToJson};

use crate::journal::{self, Journal, JournalMeta};
use crate::manifest::Manifest;
use crate::outcome::{Aggregate, CaseRecord};
use crate::runner;
use crate::watchdog::Watchdog;
use crate::CampaignError;

/// Everything a campaign invocation needs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The case space.
    pub manifest: Manifest,
    /// Journal path (created, or resumed when it exists).
    pub journal: PathBuf,
    /// Quarantine NDJSON path (`<journal>.quarantine` by default).
    pub quarantine: Option<PathBuf>,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Deque refill block size.
    pub block: usize,
    /// Bounded result-channel depth (backpressure).
    pub queue_bound: usize,
    /// Per-case watchdog timeout, in instructions.
    pub timeout: u64,
    /// Checkpoint cadence, in case records.
    pub checkpoint_every: u64,
    /// Stop once more than this many cases are quarantined.
    pub max_quarantine: Option<u64>,
    /// Resume from an existing journal instead of failing on one.
    pub resume: bool,
    /// Crash simulation: cease journal writes after this many appends this
    /// invocation (tearing the next record), as if the process were killed.
    pub kill_after: Option<u64>,
}

impl CampaignConfig {
    /// A config with defaults for everything but the manifest and journal.
    #[must_use]
    pub fn new(manifest: Manifest, journal: PathBuf) -> CampaignConfig {
        CampaignConfig {
            manifest,
            journal,
            quarantine: None,
            workers: 0,
            block: 16,
            queue_bound: 256,
            timeout: Watchdog::DEFAULT_TIMEOUT,
            checkpoint_every: 64,
            max_quarantine: None,
            resume: true,
            kill_after: None,
        }
    }

    /// The quarantine file path: `quarantine` if set, else
    /// `<journal>.quarantine`.
    #[must_use]
    pub fn quarantine_path(&self) -> PathBuf {
        self.quarantine.clone().unwrap_or_else(|| {
            let mut s = self.journal.as_os_str().to_owned();
            s.push(".quarantine");
            PathBuf::from(s)
        })
    }
}

/// What one invocation of [`run`] did.
#[derive(Debug)]
pub struct CampaignReport {
    /// Canonical manifest spec.
    pub manifest: String,
    /// Total cases in the manifest.
    pub total: u64,
    /// Cases recovered from the resumed journal.
    pub resumed: u64,
    /// Cases run by this invocation.
    pub ran: u64,
    /// Work steals the pool performed.
    pub steals: u64,
    /// The run stopped early (SIGINT, `kill_after`, or quarantine limit).
    pub interrupted: bool,
    /// The quarantine limit specifically tripped.
    pub quarantine_limit_hit: bool,
    /// The commutative fold over *all* journal records (resumed + new).
    pub aggregate: Aggregate,
    /// Every quarantined record (resumed + new), in case-id order.
    pub quarantined: Vec<CaseRecord>,
}

impl CampaignReport {
    /// Whether every manifest case is in the journal.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.aggregate.total == self.total
    }

    /// The aggregate digest (see [`Aggregate::digest`]).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.aggregate.digest()
    }

    /// The report as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", "px-campaign/report-v1".to_json()),
            ("manifest", self.manifest.to_json()),
            ("total", self.total.to_json()),
            ("resumed", self.resumed.to_json()),
            ("ran", self.ran.to_json()),
            ("steals", self.steals.to_json()),
            ("interrupted", self.interrupted.to_json()),
            ("quarantine_limit_hit", self.quarantine_limit_hit.to_json()),
            ("complete", self.complete().to_json()),
            ("digest", Json::Str(hex64(self.digest()))),
            ("aggregate", self.aggregate.to_json()),
        ])
    }
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the process panic hook silenced on this thread — expected
/// chaos-case panics should not spray backtraces over campaign output. The
/// hook chains to the previous one for every *other* thread, so genuine
/// bugs elsewhere still report normally.
pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
    QUIET.with(|q| q.set(true));
    let r = f();
    QUIET.with(|q| q.set(false));
    r
}

/// Runs (or resumes) a campaign, stopping early only on an internal
/// trigger (`kill_after`, quarantine limit).
///
/// # Errors
///
/// Journal I/O failures, journal corruption, or a journal belonging to a
/// different campaign.
pub fn run(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    run_with_shutdown(cfg, &AtomicBool::new(false))
}

/// [`run`] with an external shutdown flag (SIGINT wiring): when it goes
/// high, in-flight cases drain, a final checkpoint lands, and the journal
/// is left resumable.
///
/// # Errors
///
/// As [`run`].
pub fn run_with_shutdown(
    cfg: &CampaignConfig,
    shutdown: &AtomicBool,
) -> Result<CampaignReport, CampaignError> {
    let total = cfg.manifest.total();
    let meta = JournalMeta {
        manifest: cfg.manifest.to_string(),
        timeout: cfg.timeout,
        total,
    };

    // Open the journal: resume when the file exists and belongs to this
    // campaign, create otherwise.
    let (mut journal, mut aggregate, mut records, done) = if cfg.resume && cfg.journal.exists() {
        let state = journal::load(&cfg.journal)?;
        if state.meta != meta {
            return Err(CampaignError::Mismatch(format!(
                "journal {} belongs to campaign `{}` (timeout {}), not `{}` (timeout {})",
                cfg.journal.display(),
                state.meta.manifest,
                state.meta.timeout,
                meta.manifest,
                meta.timeout,
            )));
        }
        let j = Journal::resume(&cfg.journal, state.valid_len)?;
        (j, state.aggregate, state.records, state.done)
    } else {
        let j = Journal::create(&cfg.journal, &meta)?;
        (
            j,
            Aggregate::default(),
            Vec::new(),
            std::collections::BTreeSet::new(),
        )
    };
    let resumed = records.len() as u64;

    let pending: Vec<u64> = (0..total).filter(|id| !done.contains(id)).collect();
    let wd = Watchdog {
        timeout: cfg.timeout,
    };
    let manifest = &cfg.manifest;
    let stop = AtomicBool::new(false);

    let work = |i: usize| -> CaseRecord {
        let id = pending[i];
        quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| runner::run_case(manifest, &wd, id))).unwrap_or_else(
                |payload| {
                    CaseRecord::panicked(
                        id,
                        manifest.label(id),
                        px_util::panic_message(payload.as_ref()),
                    )
                },
            )
        })
    };

    let mut ran = 0u64;
    let mut since_ckpt = 0u64;
    let mut quarantine_count = records.iter().filter(|r| r.outcome.quarantines()).count() as u64;
    let mut killed = false;
    let mut torn_written = false;
    let mut quarantine_limit_hit = false;
    let mut sink_err: Option<CampaignError> = None;
    let pool = PoolConfig {
        workers: cfg.workers,
        block: cfg.block,
        queue_bound: cfg.queue_bound,
    };
    let pool_run = px_util::run_stealing(pending.len(), &pool, &stop, work, |_, rec| {
        if sink_err.is_some() {
            return;
        }
        if shutdown.load(Ordering::SeqCst) {
            stop.store(true, Ordering::SeqCst);
        }
        if killed {
            // Simulated SIGKILL: the first in-flight record lands torn,
            // everything after is lost — exactly what a dead process leaves.
            if !torn_written {
                torn_written = true;
                let _ = journal.tear(&rec);
            }
            return;
        }
        let step = (|| -> Result<(), CampaignError> {
            journal.case(&rec)?;
            aggregate.absorb(&rec)?;
            if rec.outcome.quarantines() {
                quarantine_count += 1;
            }
            records.push(rec);
            ran += 1;
            since_ckpt += 1;
            if since_ckpt >= cfg.checkpoint_every {
                journal.ckpt(aggregate.total, &aggregate)?;
                since_ckpt = 0;
            }
            Ok(())
        })();
        if let Err(e) = step {
            sink_err = Some(e);
            stop.store(true, Ordering::SeqCst);
            return;
        }
        if cfg.kill_after.is_some_and(|k| ran >= k) {
            killed = true;
            stop.store(true, Ordering::SeqCst);
        }
        if cfg
            .max_quarantine
            .is_some_and(|limit| quarantine_count > limit)
        {
            quarantine_limit_hit = true;
            stop.store(true, Ordering::SeqCst);
        }
    });
    if let Some(e) = sink_err {
        return Err(e);
    }

    let interrupted = pool_run.stopped || killed || quarantine_limit_hit;
    if !killed {
        // Graceful paths (completion, SIGINT drain, quarantine abort) land
        // a final checkpoint and the quarantine file; the simulated-kill
        // path must leave neither — that is the crash being simulated.
        if since_ckpt > 0 || ran == 0 {
            journal.ckpt(aggregate.total, &aggregate)?;
        }
        write_quarantine(cfg, &records)?;
    }

    records.sort_by_key(|r| r.id);
    let quarantined = records
        .iter()
        .filter(|r| r.outcome.quarantines())
        .cloned()
        .collect();
    Ok(CampaignReport {
        manifest: meta.manifest,
        total,
        resumed,
        ran,
        steals: pool_run.steals,
        interrupted,
        quarantine_limit_hit,
        aggregate,
        quarantined,
    })
}

fn write_quarantine(cfg: &CampaignConfig, records: &[CaseRecord]) -> Result<(), CampaignError> {
    let path = cfg.quarantine_path();
    let mut out = String::new();
    let mut quarantined: Vec<&CaseRecord> =
        records.iter().filter(|r| r.outcome.quarantines()).collect();
    quarantined.sort_by_key(|r| r.id);
    for rec in quarantined {
        out.push_str(
            &Json::obj([
                ("id", rec.id.to_json()),
                ("case", rec.case.to_json()),
                ("outcome", rec.outcome.name().to_json()),
                ("exit", rec.exit.to_json()),
                ("detail", rec.detail.to_json()),
                (
                    "replay",
                    format!(
                        "pxc campaign --cases {} --timeout {} --only {}",
                        cfg.manifest, cfg.timeout, rec.id
                    )
                    .to_json(),
                ),
            ])
            .dump(),
        );
        out.push('\n');
    }
    std::fs::write(&path, out).map_err(|e| CampaignError::Io {
        path,
        err: e.to_string(),
    })
}

/// Replays one case by global id, with the same panic containment the
/// campaign applies — the quarantine file's `replay` command.
#[must_use]
pub fn run_only(manifest: &Manifest, timeout: u64, id: u64) -> CaseRecord {
    let wd = Watchdog { timeout };
    quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| runner::run_case(manifest, &wd, id))).unwrap_or_else(
            |payload| {
                CaseRecord::panicked(
                    id,
                    manifest.label(id),
                    px_util::panic_message(payload.as_ref()),
                )
            },
        )
    })
}
