//! SIGINT → graceful drain, with no dependency on the `libc` crate.
//!
//! The campaign driver polls a shared [`AtomicBool`]; [`install`] arranges
//! for the first `SIGINT` (ctrl-C) to set it, so in-flight cases finish,
//! the final checkpoint lands and the journal stays resumable. A second
//! `SIGINT` falls back to the default disposition — i.e. actually kills the
//! process — so a wedged campaign can still be stopped, and the next run
//! exercises exactly the crash-recovery path the journal is designed for.
//!
//! The raw `signal(2)` binding is declared here (one `extern "C"` line)
//! because the workspace is zero-dependency by policy; on non-Unix targets
//! [`install`] is a no-op returning the same flag, which then only ever
//! trips via the in-process shutdown hooks.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide shutdown-requested flag.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::{AtomicBool, Ordering, SHUTDOWN};

    pub(super) const SIGINT: i32 = 2;
    pub(super) const SIG_DFL: usize = 0;

    extern "C" {
        pub(super) fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub(super) extern "C" fn on_sigint(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
        // Restore the default disposition: the second ctrl-C terminates.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }
}

/// Installs the SIGINT handler (idempotent) and returns the shutdown flag.
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    if !unix::INSTALLED.swap(true, Ordering::SeqCst) {
        unsafe {
            let handler = unix::on_sigint as extern "C" fn(i32) as *const () as usize;
            unix::signal(unix::SIGINT, handler);
        }
    }
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_returns_the_flag() {
        let a = install();
        let b = install();
        assert!(std::ptr::eq(a, b));
        assert!(!a.load(Ordering::SeqCst));
    }
}
