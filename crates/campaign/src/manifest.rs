//! The campaign manifest: a deterministic, addressable case-id space.
//!
//! A [`Manifest`] is an ordered list of [`CaseGen`] generators; the global
//! case-id space is their concatenation, so case `id` means the same case
//! in every run, every shard and every resume — the property the whole
//! checkpoint/resume design rests on. Manifests round-trip through a
//! canonical spec string (`gen+gen+...`), which is what `pxc campaign
//! --cases` parses and what the journal's meta record pins.

use px_detect::Tool;
use px_mach::FaultMix;
use px_workloads::zoo::{self, ZooSpec};

/// One case generator.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseGen {
    /// `fault:<seed>:<n>[:<mix>]` — `n` fault-injection cases (experiment
    /// E12's machinery) under campaign seed `seed`.
    Fault {
        /// Campaign seed.
        seed: u64,
        /// Number of cases.
        n: u64,
        /// Fault mix (canonical spec form, e.g. `bitflip,crash=2`).
        mix: FaultMix,
    },
    /// `zoo:<spec>[*K]` — one generated program run under `K` input seeds
    /// for each of the three detection tools (`K * 3` cases).
    Zoo {
        /// The generated program.
        spec: ZooSpec,
        /// Input seeds exercised (1..=K).
        seeds: u64,
    },
    /// `zoo-roster[:quick]` — the whole E15 roster. Full form runs every
    /// `(family, tool)` pair; `quick` runs one (cycling) tool per family.
    ZooRoster {
        /// One case per family instead of one per `(family, tool)`.
        quick: bool,
    },
    /// `chaos:<seed>:<n>` — adversarial scheduler food: a seeded mixture of
    /// well-behaved, panicking and runaway cases with known ground truth
    /// ([`crate::runner::chaos_truth`]). Exists to prove the campaign
    /// survives hostile cases; the CI gate feeds on it.
    Chaos {
        /// Chaos seed.
        seed: u64,
        /// Number of cases.
        n: u64,
    },
}

impl CaseGen {
    /// Parses one generator spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(s: &str) -> Result<CaseGen, String> {
        if let Some(rest) = s.strip_prefix("fault:") {
            let parts: Vec<&str> = rest.splitn(3, ':').collect();
            if parts.len() < 2 {
                return Err(format!("`{s}`: expected fault:<seed>:<n>[:<mix>]"));
            }
            let seed = parse_u64(parts[0], "fault seed")?;
            let n = parse_u64(parts[1], "fault case count")?;
            let mix = match parts.get(2) {
                Some(m) => FaultMix::parse(m).map_err(|e| format!("`{s}`: {e}"))?,
                None => FaultMix::uniform(),
            };
            return Ok(CaseGen::Fault { seed, n, mix });
        }
        if let Some(rest) = s.strip_prefix("chaos:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 2 {
                return Err(format!("`{s}`: expected chaos:<seed>:<n>"));
            }
            return Ok(CaseGen::Chaos {
                seed: parse_u64(parts[0], "chaos seed")?,
                n: parse_u64(parts[1], "chaos case count")?,
            });
        }
        if s == "zoo-roster" {
            return Ok(CaseGen::ZooRoster { quick: false });
        }
        if s == "zoo-roster:quick" {
            return Ok(CaseGen::ZooRoster { quick: true });
        }
        if s.starts_with("zoo:") {
            let (spec_str, seeds) = match s.rsplit_once('*') {
                Some((head, k)) => (head, parse_u64(k, "zoo seed count")?),
                None => (s, 1),
            };
            if seeds == 0 {
                return Err(format!("`{s}`: zoo seed count must be at least 1"));
            }
            let spec = ZooSpec::parse(spec_str)?;
            return Ok(CaseGen::Zoo { spec, seeds });
        }
        Err(format!(
            "`{s}`: unknown case generator (expected fault:…, zoo:…, zoo-roster or chaos:…)"
        ))
    }

    /// Number of cases this generator contributes.
    #[must_use]
    pub fn count(&self) -> u64 {
        match self {
            CaseGen::Fault { n, .. } | CaseGen::Chaos { n, .. } => *n,
            CaseGen::Zoo { seeds, .. } => seeds * Tool::ALL.len() as u64,
            CaseGen::ZooRoster { quick } => {
                let families = zoo::roster().len() as u64;
                if *quick {
                    families
                } else {
                    families * Tool::ALL.len() as u64
                }
            }
        }
    }
}

impl std::fmt::Display for CaseGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseGen::Fault { seed, n, mix } => {
                write!(f, "fault:{seed}:{n}")?;
                let spec = mix.to_string();
                if spec != FaultMix::uniform().to_string() {
                    write!(f, ":{spec}")?;
                }
                Ok(())
            }
            CaseGen::Zoo { spec, seeds } => {
                write!(f, "{spec}")?;
                if *seeds != 1 {
                    write!(f, "*{seeds}")?;
                }
                Ok(())
            }
            CaseGen::ZooRoster { quick } => {
                write!(f, "zoo-roster{}", if *quick { ":quick" } else { "" })
            }
            CaseGen::Chaos { seed, n } => write!(f, "chaos:{seed}:{n}"),
        }
    }
}

/// An ordered list of generators defining the global case-id space.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The generators, in id order.
    pub gens: Vec<CaseGen>,
}

impl Manifest {
    /// Parses a `gen+gen+...` manifest spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending generator.
    pub fn parse(s: &str) -> Result<Manifest, String> {
        if s.trim().is_empty() {
            return Err("empty manifest".to_owned());
        }
        let gens = s
            .split('+')
            .map(CaseGen::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest { gens })
    }

    /// Total cases across all generators.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.gens.iter().map(CaseGen::count).sum()
    }

    /// Resolves a global case id to `(generator, local index)`.
    #[must_use]
    pub fn locate(&self, id: u64) -> Option<(&CaseGen, u64)> {
        let mut base = 0;
        for gen in &self.gens {
            let n = gen.count();
            if id < base + n {
                return Some((gen, id - base));
            }
            base += n;
        }
        None
    }

    /// The canonical case label `<gen>#<local>` for a global id.
    #[must_use]
    pub fn label(&self, id: u64) -> String {
        match self.locate(id) {
            Some((gen, local)) => format!("{gen}#{local}"),
            None => format!("?#{id}"),
        }
    }
}

impl std::fmt::Display for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, gen) in self.gens.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{gen}")?;
        }
        Ok(())
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("`{s}`: {what} must be a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_specs_round_trip() {
        for s in [
            "fault:1:256",
            "fault:7:64:bitflip=1,crash=2,runaway=1",
            "zoo:parser:3",
            "zoo:state-machine:12:n3*4",
            "zoo-roster",
            "zoo-roster:quick",
            "chaos:9:128",
            "fault:1:32+chaos:2:16+zoo:parser:3*2",
        ] {
            let m = Manifest::parse(s).unwrap();
            assert_eq!(m.to_string(), s, "canonical form round-trips");
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "",
            "fault:1",
            "fault:x:2",
            "chaos:1",
            "zoo:parser:3*0",
            "zoo:quux:1",
            "wedge:1:2",
            "fault:1:2+",
        ] {
            assert!(Manifest::parse(s).is_err(), "`{s}` should be rejected");
        }
    }

    #[test]
    fn counts_and_locate_agree() {
        let m = Manifest::parse("fault:1:4+chaos:2:3+zoo:parser:3*2").unwrap();
        assert_eq!(m.total(), 4 + 3 + 6);
        let (gen, local) = m.locate(0).unwrap();
        assert!(matches!(gen, CaseGen::Fault { .. }));
        assert_eq!(local, 0);
        let (gen, local) = m.locate(5).unwrap();
        assert!(matches!(gen, CaseGen::Chaos { .. }));
        assert_eq!(local, 1);
        let (gen, local) = m.locate(7).unwrap();
        assert!(matches!(gen, CaseGen::Zoo { .. }));
        assert_eq!(local, 0);
        assert_eq!(m.locate(13), None);
        assert_eq!(m.label(5), "chaos:2:3#1");
        assert_eq!(m.label(99), "?#99");
    }

    #[test]
    fn roster_counts_match_the_zoo() {
        let families = zoo::roster().len() as u64;
        assert_eq!(
            CaseGen::ZooRoster { quick: false }.count(),
            families * Tool::ALL.len() as u64
        );
        assert_eq!(CaseGen::ZooRoster { quick: true }.count(), families);
    }
}
