//! # px-campaign — the crash-safe campaign runner
//!
//! Everything upstream of this crate computes *one* thing deterministically:
//! a fault case, a zoo run, a throughput point. This crate turns millions of
//! those into a service that survives its own workload (DESIGN.md §11):
//!
//! * **[`manifest`]** — a deterministic, addressable case-id space built
//!   from generators (`fault:…`, `zoo:…`, `zoo-roster`, `chaos:…`), so case
//!   `id` means the same case in every run, shard and resume.
//! * **[`runner`]** — the pure per-case function `(manifest, watchdog, id)
//!   → CaseRecord`, plus the adversarial `chaos` generator with known
//!   ground truth.
//! * **[`watchdog`]** — per-case *instruction* budgets (deterministic, not
//!   wall-clock), distinguishing watchdog trips from native budget exits.
//! * **[`outcome`]** — typed [`CaseOutcome`]s, self-digesting journal
//!   records, and the commutative [`Aggregate`] whose digest is
//!   byte-identical regardless of completion order or kill/resume.
//! * **[`journal`]** — the append-only NDJSON source of truth: meta line,
//!   case records, fsynced checkpoints; torn tails truncated, anything
//!   else corrupt loudly.
//! * **[`campaign`]** — the driver: work-stealing pool, `catch_unwind`
//!   containment, quarantine file with replay commands, SIGINT drain,
//!   checkpoint cadence, and an in-process crash simulator (`kill_after`)
//!   the resume tests are built on.
//! * **[`fault`]** — experiment E12's fault-injection campaign (moved here
//!   from the bench harness so the CLI, the bench binaries and the runner
//!   share one implementation).
//! * **[`signal`]** — a zero-dependency SIGINT binding (first hit drains,
//!   second kills).

pub mod campaign;
pub mod fault;
pub mod journal;
pub mod manifest;
pub mod outcome;
pub mod runner;
pub mod signal;
pub mod watchdog;

pub use campaign::{
    quiet_panics, run, run_only, run_with_shutdown, CampaignConfig, CampaignReport,
};
pub use manifest::{CaseGen, Manifest};
pub use outcome::{Aggregate, CaseOutcome, CaseRecord};
pub use watchdog::Watchdog;

/// Why a campaign could not run (cases failing is *not* an error — that is
/// what quarantine is for; this type is for the service's own failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A journal/quarantine file operation failed.
    Io {
        /// The file involved.
        path: std::path::PathBuf,
        /// The OS error.
        err: String,
    },
    /// The journal is damaged somewhere other than a torn tail.
    Corrupt {
        /// 1-based journal line (or record id, for aggregate-level faults).
        line: u64,
        /// What was wrong.
        why: String,
    },
    /// The journal belongs to a different campaign (manifest or timeout).
    Mismatch(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            CampaignError::Corrupt { line, why } => {
                write!(f, "journal corrupt at line {line}: {why}")
            }
            CampaignError::Mismatch(why) => write!(f, "campaign mismatch: {why}"),
        }
    }
}

impl std::error::Error for CampaignError {}
