//! The per-case instruction-budget watchdog.
//!
//! A campaign must outlive runaway cases, and it must stay deterministic —
//! so the watchdog is an *instruction* budget, not a wall-clock timer: the
//! simulated engines are all budget-bounded, and a case that would spin
//! forever instead returns `RunExit::BudgetExhausted` after exactly
//! `timeout` instructions on every machine, every run.
//!
//! The subtlety is telling a watchdog trip apart from a case whose *own*
//! budget ran out: the watchdog [`clamp`](Watchdog::clamp)s the case's
//! native budget, and a budget-class exit counts as
//! [`tripped`](Watchdog::tripped) only when the clamp actually lowered it.
//! A fault-campaign case with a 60 000-instruction native budget under a
//! 2 M watchdog keeps its historical behaviour bit-for-bit.

/// An instruction-budget watchdog shared by the campaign runner and the
/// `fault_campaign --case-timeout` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Maximum instructions a single case may retire.
    pub timeout: u64,
}

impl Watchdog {
    /// Default per-case budget: generous for every real workload, small
    /// enough that a runaway case costs milliseconds.
    pub const DEFAULT_TIMEOUT: u64 = 2_000_000;

    /// A watchdog with the default timeout.
    #[must_use]
    pub fn default_budget() -> Watchdog {
        Watchdog {
            timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// The instruction budget a case with `native` budget actually gets.
    #[must_use]
    pub fn clamp(&self, native: u64) -> u64 {
        native.min(self.timeout)
    }

    /// Whether a run that ended with `exit_class` under the clamped budget
    /// was stopped by the *watchdog* (as opposed to its own native budget).
    #[must_use]
    pub fn tripped(&self, native: u64, exit_class: &str) -> bool {
        exit_class == "budget" && self.timeout < native
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_only_lowers() {
        let wd = Watchdog { timeout: 100 };
        assert_eq!(wd.clamp(60), 60);
        assert_eq!(wd.clamp(100), 100);
        assert_eq!(wd.clamp(5_000), 100);
    }

    #[test]
    fn tripped_distinguishes_native_budget_exits() {
        let wd = Watchdog { timeout: 100 };
        // Native budget below the watchdog: a budget exit is the case's own.
        assert!(!wd.tripped(60, "budget"));
        // Native budget above: the watchdog cut it short.
        assert!(wd.tripped(5_000, "budget"));
        // Non-budget exits never trip.
        assert!(!wd.tripped(5_000, "exited"));
        assert!(!wd.tripped(5_000, "crashed"));
    }
}
