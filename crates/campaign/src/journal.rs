//! The append-only NDJSON journal — the campaign's single source of truth.
//!
//! Line 1 is a `meta` record pinning the manifest, watchdog timeout and
//! total case count; every finished case appends one self-digesting `case`
//! record; every `checkpoint_every` cases the driver appends a `ckpt`
//! record carrying the running aggregate digest and fsyncs. Nothing is ever
//! rewritten, so a crash can lose at most the bytes after the last newline.
//!
//! [`load`] replays a journal: it verifies every case record's stored
//! digest, folds the records *in file order* into an [`Aggregate`], checks
//! each `ckpt` against the fold so far, and — because the aggregate is
//! commutative — hands back exactly the state an uninterrupted run would
//! hold. A torn tail (no trailing newline, or an unparseable/mis-digested
//! final line) is dropped and reported via `valid_len`, which
//! [`Journal::resume`] truncates to before appending; corruption anywhere
//! *else* is a hard [`CampaignError::Corrupt`], never silently skipped.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use px_util::{hex64, parse_hex64, Json, ToJson};

use crate::outcome::{Aggregate, CaseRecord};
use crate::CampaignError;

/// Journal schema tag (line 1 of every journal).
pub const SCHEMA: &str = "px-campaign/journal-v1";

/// The journal's identity: what campaign this file belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Canonical manifest spec.
    pub manifest: String,
    /// Watchdog timeout (instructions).
    pub timeout: u64,
    /// Total cases in the manifest.
    pub total: u64,
}

impl JournalMeta {
    fn to_line(&self) -> String {
        Json::obj([
            ("t", "meta".to_json()),
            ("schema", SCHEMA.to_json()),
            ("manifest", self.manifest.to_json()),
            ("timeout", self.timeout.to_json()),
            ("total", self.total.to_json()),
        ])
        .dump()
    }

    fn from_json(v: &Json) -> Result<JournalMeta, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("meta record missing `schema`")?;
        if schema != SCHEMA {
            return Err(format!("journal schema `{schema}` (expected `{SCHEMA}`)"));
        }
        Ok(JournalMeta {
            manifest: v
                .get("manifest")
                .and_then(Json::as_str)
                .ok_or("meta record missing `manifest`")?
                .to_owned(),
            timeout: v
                .get("timeout")
                .and_then(Json::as_u64)
                .ok_or("meta record missing `timeout`")?,
            total: v
                .get("total")
                .and_then(Json::as_u64)
                .ok_or("meta record missing `total`")?,
        })
    }
}

/// Everything a resume needs, replayed from a journal file.
#[derive(Debug)]
pub struct JournalState {
    /// The journal's identity record.
    pub meta: JournalMeta,
    /// Case records, in file order.
    pub records: Vec<CaseRecord>,
    /// Ids of finished cases (the resume skip-set).
    pub done: BTreeSet<u64>,
    /// The commutative fold of all case records.
    pub aggregate: Aggregate,
    /// Checkpoint records seen (all verified).
    pub checkpoints: u64,
    /// Bytes of the file that are intact; a torn tail lies beyond.
    pub valid_len: u64,
    /// Whether a torn tail was dropped.
    pub torn: bool,
}

/// Replays and verifies the journal at `path`.
///
/// # Errors
///
/// I/O failures, a missing/foreign meta line, or corruption anywhere
/// before the final line (which alone is treated as a torn tail).
pub fn load(path: &Path) -> Result<JournalState, CampaignError> {
    let io_err = |e: std::io::Error| CampaignError::Io {
        path: path.to_path_buf(),
        err: e.to_string(),
    };
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(io_err)?;

    // Split into newline-terminated lines, keeping byte offsets so a torn
    // tail can be truncated away precisely.
    let mut lines: Vec<(u64, &str)> = Vec::new();
    let mut start = 0usize;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            lines.push((i as u64 + 1, &text[start..i]));
            start = i + 1;
        }
    }
    let mut torn = start < text.len();
    let mut valid_len = lines.last().map_or(0, |(end, _)| *end);

    let mut meta = None;
    let mut records = Vec::new();
    let mut done = BTreeSet::new();
    let mut aggregate = Aggregate::default();
    let mut checkpoints = 0u64;
    let mut prev_valid = 0u64;
    for (idx, (end, line)) in lines.iter().enumerate() {
        let lineno = idx as u64 + 1;
        let last = idx + 1 == lines.len();
        // A terminated-but-bad final line is still a torn tail: the crash
        // can land between the payload write and the newline of the *next*
        // record. Anything earlier is corruption.
        let fail = |why: String| -> Result<(), CampaignError> {
            if last {
                Ok(())
            } else {
                Err(CampaignError::Corrupt { line: lineno, why })
            }
        };
        let parsed = match px_util::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                fail(e.to_string())?;
                torn = true;
                valid_len = prev_valid;
                break;
            }
        };
        let tag = parsed.get("t").and_then(Json::as_str).unwrap_or("");
        let step = match (lineno, tag) {
            (1, "meta") => JournalMeta::from_json(&parsed).map(|m| {
                meta = Some(m);
            }),
            (1, t) => Err(format!("first record is `{t}`, not `meta`")),
            (_, "meta") => Err("duplicate meta record".to_owned()),
            (_, "case") => CaseRecord::from_json(&parsed).and_then(|rec| {
                if !done.insert(rec.id) {
                    return Err(format!("duplicate case id {}", rec.id));
                }
                aggregate
                    .absorb(&rec)
                    .map_err(|e| e.to_string())
                    .map(|()| records.push(rec))
            }),
            (_, "ckpt") => {
                verify_ckpt(&parsed, records.len() as u64, &aggregate).map(|()| checkpoints += 1)
            }
            (_, t) => Err(format!("unknown record type `{t}`")),
        };
        if let Err(why) = step {
            fail(why)?;
            // Roll back what the bad final case record may have absorbed by
            // replaying the intact prefix.
            let mut redo = Aggregate::default();
            let mut redone = BTreeSet::new();
            for rec in &records {
                redo.absorb(rec).expect("prefix absorbed once already");
                redone.insert(rec.id);
            }
            aggregate = redo;
            done = redone;
            torn = true;
            valid_len = prev_valid;
            break;
        }
        prev_valid = *end;
    }
    let meta = meta.ok_or(CampaignError::Corrupt {
        line: 1,
        why: "journal has no meta record".to_owned(),
    })?;
    Ok(JournalState {
        meta,
        records,
        done,
        aggregate,
        checkpoints,
        valid_len,
        torn,
    })
}

fn verify_ckpt(v: &Json, done: u64, aggregate: &Aggregate) -> Result<(), String> {
    let n = v
        .get("done")
        .and_then(Json::as_u64)
        .ok_or("ckpt record missing `done`")?;
    let agg = v
        .get("agg")
        .and_then(Json::as_str)
        .and_then(parse_hex64)
        .ok_or("ckpt record missing `agg`")?;
    if n != done {
        return Err(format!("ckpt claims {n} cases, journal holds {done}"));
    }
    if agg != aggregate.digest() {
        return Err(format!(
            "ckpt aggregate digest {} does not match replay {}",
            hex64(agg),
            hex64(aggregate.digest())
        ));
    }
    Ok(())
}

/// An open journal being appended to.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates a fresh journal (truncating any existing file) and writes
    /// the meta record.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn create(path: &Path, meta: &JournalMeta) -> Result<Journal, CampaignError> {
        let file = File::create(path).map_err(|e| CampaignError::Io {
            path: path.to_path_buf(),
            err: e.to_string(),
        })?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
        };
        j.line(&meta.to_line())?;
        Ok(j)
    }

    /// Reopens an existing journal for appending, first truncating away a
    /// torn tail (`valid_len` from [`load`]).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn resume(path: &Path, valid_len: u64) -> Result<Journal, CampaignError> {
        let io_err = |e: std::io::Error| CampaignError::Io {
            path: path.to_path_buf(),
            err: e.to_string(),
        };
        let mut file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
        file.set_len(valid_len).map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    fn line(&mut self, s: &str) -> Result<(), CampaignError> {
        let mut buf = String::with_capacity(s.len() + 1);
        buf.push_str(s);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| CampaignError::Io {
                path: self.path.clone(),
                err: e.to_string(),
            })
    }

    /// Appends one case record.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn case(&mut self, rec: &CaseRecord) -> Result<(), CampaignError> {
        self.line(&rec.to_line())
    }

    /// Appends a checkpoint record and fsyncs the file.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn ckpt(&mut self, done: u64, aggregate: &Aggregate) -> Result<(), CampaignError> {
        self.line(
            &Json::obj([
                ("t", "ckpt".to_json()),
                ("done", done.to_json()),
                ("agg", Json::Str(hex64(aggregate.digest()))),
            ])
            .dump(),
        )?;
        self.file.sync_all().map_err(|e| CampaignError::Io {
            path: self.path.clone(),
            err: e.to_string(),
        })
    }

    /// Writes *half* of a case record with no newline — the crash-simulation
    /// hook the kill/resume tests use to exercise torn-tail truncation.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn tear(&mut self, rec: &CaseRecord) -> Result<(), CampaignError> {
        let line = rec.to_line();
        let half = &line[..line.len() / 2];
        self.file
            .write_all(half.as_bytes())
            .map_err(|e| CampaignError::Io {
                path: self.path.clone(),
                err: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::CaseOutcome;

    fn meta(total: u64) -> JournalMeta {
        JournalMeta {
            manifest: format!("chaos:1:{total}"),
            timeout: 10_000,
            total,
        }
    }

    fn record(id: u64) -> CaseRecord {
        CaseRecord {
            id,
            case: format!("chaos:1:8#{id}"),
            outcome: CaseOutcome::Done,
            exit: "exited".to_owned(),
            faults: 0,
            nt_paths: 0,
            detections: 0,
            covered_edges: 0,
            program_key: String::new(),
            code_len: 0,
            cov_bits: Vec::new(),
            detail: String::new(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("px-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn journals_round_trip_through_load() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path, &meta(8)).unwrap();
        let mut agg = Aggregate::default();
        for id in 0..4 {
            let rec = record(id);
            j.case(&rec).unwrap();
            agg.absorb(&rec).unwrap();
        }
        j.ckpt(4, &agg).unwrap();
        drop(j);

        let state = load(&path).unwrap();
        assert_eq!(state.meta, meta(8));
        assert_eq!(state.records.len(), 4);
        assert_eq!(state.checkpoints, 1);
        assert!(!state.torn);
        assert_eq!(state.aggregate.digest(), agg.digest());
        assert!(state.done.contains(&3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tails_are_dropped_and_resume_truncates() {
        let path = tmp("torn");
        let mut j = Journal::create(&path, &meta(8)).unwrap();
        j.case(&record(0)).unwrap();
        j.tear(&record(1)).unwrap();
        drop(j);

        let state = load(&path).unwrap();
        assert!(state.torn);
        assert_eq!(state.records.len(), 1, "the torn record is dropped");
        let full_len = std::fs::metadata(&path).unwrap().len();
        assert!(state.valid_len < full_len);

        let mut j = Journal::resume(&path, state.valid_len).unwrap();
        j.case(&record(1)).unwrap();
        drop(j);
        let state = load(&path).unwrap();
        assert!(!state.torn, "truncate + clean append heals the file");
        assert_eq!(state.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let path = tmp("corrupt");
        let mut j = Journal::create(&path, &meta(8)).unwrap();
        j.case(&record(0)).unwrap();
        j.case(&record(1)).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        // Tamper with the *first* case line (not the tail).
        let bad = text.replacen("\"faults\":0", "\"faults\":9", 1);
        std::fs::write(&path, bad).unwrap();
        let err = load(&path).unwrap_err();
        assert!(
            matches!(err, CampaignError::Corrupt { line: 2, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_case_ids_are_corruption() {
        let path = tmp("dup");
        let mut j = Journal::create(&path, &meta(8)).unwrap();
        j.case(&record(0)).unwrap();
        j.case(&record(0)).unwrap();
        j.case(&record(1)).unwrap();
        drop(j);
        let err = load(&path).unwrap_err();
        assert!(
            matches!(err, CampaignError::Corrupt { line: 3, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_checkpoints_are_detected() {
        let path = tmp("badckpt");
        let mut j = Journal::create(&path, &meta(8)).unwrap();
        let mut agg = Aggregate::default();
        let rec = record(0);
        j.case(&rec).unwrap();
        agg.absorb(&rec).unwrap();
        j.ckpt(4, &agg).unwrap();
        j.case(&record(1)).unwrap();
        drop(j);
        let err = load(&path).unwrap_err();
        assert!(
            matches!(err, CampaignError::Corrupt { line: 3, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
