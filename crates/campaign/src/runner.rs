//! Executes one manifest case and renders it as a journal [`CaseRecord`].
//!
//! [`run_case`] is the pure per-case function the campaign pool fans out:
//! `(manifest, watchdog, id) → CaseRecord`, no shared state, no ambient
//! configuration — which is what makes records byte-identical across
//! workers, runs and resumes. It does **not** catch panics; the campaign
//! driver wraps it in `catch_unwind` so a panicking case becomes a
//! [`CaseRecord::panicked`] quarantine entry instead of a dead worker.
//!
//! The `chaos` generator exists to prove exactly that: it deliberately
//! produces a seeded mixture of well-behaved, panicking and runaway cases
//! with a known ground truth ([`chaos_truth`]), which the CI campaign gate
//! checks the quarantine list against.

use pathexpander::PxConfig;
use px_detect::{classify, report, Tool};
use px_isa::asm::assemble;
use px_mach::{run_baseline, IoState, MachConfig};
use px_util::{Rng, SplitMix64};
use px_workloads::zoo::{self, ZooSpec};

use crate::fault;
use crate::manifest::{CaseGen, Manifest};
use crate::outcome::{CaseOutcome, CaseRecord};
use crate::watchdog::Watchdog;

/// Native instruction budget for zoo cases (the watchdog clamps it).
pub const ZOO_BUDGET: u64 = 5_000_000;

/// Nominal native budget for chaos cases — far above any sane watchdog, so
/// a runaway chaos case always counts as a watchdog trip.
pub const CHAOS_BUDGET: u64 = 1_000_000_000;

/// Runs global case `id` of `manifest` under `wd`.
///
/// # Panics
///
/// Panics when `id` is outside the manifest (a driver bug, not a case
/// failure) — and whenever the case itself panics, by design: chaos cases
/// do, and the campaign driver's `catch_unwind` is the layer that turns
/// that into a quarantine record.
#[must_use]
pub fn run_case(manifest: &Manifest, wd: &Watchdog, id: u64) -> CaseRecord {
    let (gen, local) = manifest
        .locate(id)
        .unwrap_or_else(|| panic!("case id {id} outside manifest `{manifest}`"));
    let case = format!("{gen}#{local}");
    match gen {
        CaseGen::Fault { seed, mix, .. } => run_fault(id, case, *seed, local, mix, wd),
        CaseGen::Zoo { spec, .. } => {
            let tools = Tool::ALL.len() as u64;
            run_zoo(id, case, spec, local / tools + 1, tool_at(local), wd)
        }
        CaseGen::ZooRoster { quick } => {
            let roster = zoo::roster();
            let family = if *quick {
                local
            } else {
                local / Tool::ALL.len() as u64
            };
            let spec = &roster[family as usize];
            run_zoo(id, case, spec, 1, tool_at(local), wd)
        }
        CaseGen::Chaos { seed, .. } => run_chaos(id, case, *seed, local, wd),
    }
}

fn tool_at(local: u64) -> Tool {
    Tool::ALL[(local % Tool::ALL.len() as u64) as usize]
}

fn run_fault(
    id: u64,
    case: String,
    seed: u64,
    local: u64,
    mix: &px_mach::FaultMix,
    wd: &Watchdog,
) -> CaseRecord {
    let fc = fault::run_case_budget(seed, local, mix, wd.clamp(fault::CASE_BUDGET));
    let (outcome, detail) = if !fc.violations.is_empty() {
        (CaseOutcome::Violated, fc.violations.join("; "))
    } else if wd.tripped(fault::CASE_BUDGET, &fc.exit) {
        (CaseOutcome::TimedOut, String::new())
    } else {
        (CaseOutcome::Done, String::new())
    };
    CaseRecord {
        id,
        case,
        outcome,
        exit: fc.exit,
        faults: fc.faults,
        nt_paths: fc.nt_paths,
        detections: 0,
        covered_edges: 0,
        program_key: String::new(),
        code_len: 0,
        cov_bits: Vec::new(),
        detail,
    }
}

fn run_zoo(
    id: u64,
    case: String,
    spec: &ZooSpec,
    input_seed: u64,
    tool: Tool,
    wd: &Watchdog,
) -> CaseRecord {
    let w = zoo::generate(spec);
    let compiled = w
        .compile_for(tool)
        .unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, tool.name()));
    let px = PxConfig::default()
        .with_max_nt_path_len(w.max_nt_path_len)
        .with_max_instructions(wd.clamp(ZOO_BUDGET));
    let io = IoState::new(w.general_input(input_seed), input_seed);
    let r = pathexpander::run(&compiled.program, &MachConfig::single_core(), &px, io);

    let all_lines: Vec<u32> = w.bugs.iter().map(|b| w.marker_line(&b.marker)).collect();
    let dets = report(&compiled, &r.monitor, tool);
    let c = classify(&dets, &all_lines, false);
    let exit = r.exit.class().to_owned();
    let outcome = if wd.tripped(ZOO_BUDGET, &exit) {
        CaseOutcome::TimedOut
    } else {
        CaseOutcome::Done
    };
    CaseRecord {
        id,
        case,
        outcome,
        exit,
        faults: 0,
        nt_paths: r.stats.spawns,
        detections: c.true_positive_lines.len() as u64,
        covered_edges: u64::from(r.total_coverage.covered_edges(&compiled.program)),
        program_key: format!("{spec}/{}", tool.name()),
        code_len: compiled.program.code.len() as u64,
        cov_bits: r.total_coverage.pack_bits(),
        detail: String::new(),
    }
}

/// The chaos case classes, drawn from one seeded roll per case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosKind {
    Ok,
    Panic,
    Runaway,
}

fn chaos_kind(seed: u64, local: u64) -> ChaosKind {
    let mut rng = SplitMix64::new(seed ^ local.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match rng.next_u64() % 8 {
        0 => ChaosKind::Panic,
        1 | 2 => ChaosKind::Runaway,
        _ => ChaosKind::Ok,
    }
}

/// The ground-truth outcome of every case of `chaos:<seed>:<n>`, in local
/// order — what a campaign's quarantine must match exactly (assuming the
/// watchdog timeout is below [`CHAOS_BUDGET`], which any sane one is).
#[must_use]
pub fn chaos_truth(seed: u64, n: u64) -> Vec<CaseOutcome> {
    (0..n)
        .map(|local| match chaos_kind(seed, local) {
            ChaosKind::Ok => CaseOutcome::Done,
            ChaosKind::Panic => CaseOutcome::Panicked,
            ChaosKind::Runaway => CaseOutcome::TimedOut,
        })
        .collect()
}

fn run_chaos(id: u64, case: String, seed: u64, local: u64, wd: &Watchdog) -> CaseRecord {
    let kind = chaos_kind(seed, local);
    let src = match kind {
        ChaosKind::Panic => {
            panic!("chaos case {local} panicked by design (seed {seed})");
        }
        ChaosKind::Runaway => {
            r"
            .code
            main:
            spin:
                addi r8, r8, 1
                jmp spin
            "
        }
        ChaosKind::Ok => {
            r"
            .code
            main:
                li r4, 40
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            "
        }
    };
    let program = assemble(src).unwrap_or_else(|e| panic!("chaos template: {e}"));
    let io = IoState::new(Vec::new(), seed ^ local);
    let r = run_baseline(
        &program,
        &MachConfig::single_core(),
        io,
        wd.clamp(CHAOS_BUDGET),
    );
    let exit = r.exit.class().to_owned();
    let outcome = if wd.tripped(CHAOS_BUDGET, &exit) {
        CaseOutcome::TimedOut
    } else {
        CaseOutcome::Done
    };
    CaseRecord {
        id,
        case,
        outcome,
        exit,
        faults: 0,
        nt_paths: 0,
        detections: 0,
        covered_edges: 0,
        program_key: String::new(),
        code_len: 0,
        cov_bits: Vec::new(),
        detail: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn wd(timeout: u64) -> Watchdog {
        Watchdog { timeout }
    }

    #[test]
    fn fault_cases_render_as_records() {
        let m = Manifest::parse("fault:1:8").unwrap();
        let rec = run_case(&m, &Watchdog::default_budget(), 3);
        assert_eq!(rec.id, 3);
        assert_eq!(rec.case, "fault:1:8#3");
        assert_eq!(rec.outcome, CaseOutcome::Done);
        assert!(rec.program_key.is_empty());
        // Records are pure: the same id renders byte-identically.
        let again = run_case(&m, &Watchdog::default_budget(), 3);
        assert_eq!(rec.to_line(), again.to_line());
    }

    #[test]
    fn zoo_cases_carry_coverage_shards() {
        let m = Manifest::parse("zoo:parser:3*2").unwrap();
        let rec = run_case(&m, &Watchdog::default_budget(), 0);
        assert_eq!(rec.case, "zoo:parser:3*2#0");
        assert_eq!(rec.outcome, CaseOutcome::Done);
        assert_eq!(rec.program_key, "zoo:parser:3/CCured");
        assert!(rec.code_len > 0);
        assert!(!rec.cov_bits.is_empty());
        assert!(rec.covered_edges > 0, "zoo runs cover edges");
        assert!(rec.detections > 0, "cold zoo bugs are detected");
        // Same family, different tool: the shard key differs.
        let other = run_case(&m, &Watchdog::default_budget(), 1);
        assert_ne!(other.program_key, rec.program_key);
    }

    #[test]
    fn chaos_matches_its_ground_truth() {
        let m = Manifest::parse("chaos:5:24").unwrap();
        let truth = chaos_truth(5, 24);
        assert!(truth.contains(&CaseOutcome::Panicked), "mix has panics");
        assert!(truth.contains(&CaseOutcome::TimedOut), "mix has runaways");
        assert!(truth.contains(&CaseOutcome::Done), "mix has clean cases");
        for (local, want) in truth.iter().enumerate() {
            let got = catch_unwind(AssertUnwindSafe(|| run_case(&m, &wd(10_000), local as u64)));
            match want {
                CaseOutcome::Panicked => assert!(got.is_err(), "case {local} must panic"),
                other => assert_eq!(got.unwrap().outcome, *other, "case {local}"),
            }
        }
    }

    #[test]
    fn roster_cases_resolve_every_family_and_tool() {
        let quick = Manifest::parse("zoo-roster:quick").unwrap();
        let rec = run_case(&quick, &Watchdog::default_budget(), 1);
        assert!(rec.case.starts_with("zoo-roster:quick#"));
        assert_eq!(rec.outcome, CaseOutcome::Done);
        assert!(!rec.program_key.is_empty());
    }

    #[test]
    fn out_of_range_ids_are_a_driver_bug() {
        let m = Manifest::parse("chaos:1:2").unwrap();
        let got = catch_unwind(AssertUnwindSafe(|| {
            run_case(&m, &Watchdog::default_budget(), 99)
        }));
        assert!(got.is_err());
    }
}
