//! # px-analyze — static CFG analysis of PXVM-32 programs
//!
//! PathExpander's coverage and safety metrics are *dynamic*: branch-edge
//! coverage divides by every static edge (paper §2, §6.3), and the
//! Unsafe-Latency of an NT-path (§3.2, Figure 3) is only known after the
//! path has run into its terminating unsafe event. This crate computes the
//! static counterparts once, ahead of execution:
//!
//! * [`cfg::Cfg`] — an instruction-level control-flow graph with basic
//!   blocks, call/ret edges under the return discipline, fallthrough-off-end
//!   exit edges, reachability and dominators;
//! * [`constprop::ConstProp`] — sparse conditional constant propagation
//!   marking statically-infeasible branch edges and unreachable code;
//! * [`safety::Safety`] — per-instruction/per-edge shortest and must-reach
//!   distances to unsafe events (syscalls, watch ops, monitor probes), the
//!   static mirror of §3.2's Unsafe-Latency;
//! * [`lint::lint`] — a guest-program diagnostic pass built on the above.
//!
//! [`Analysis::of`] bundles the pipeline. Consumers:
//!
//! * `pxc analyze` renders the diagnostics (human and `--json`);
//! * `Coverage::branch_coverage_feasible` (px-mach) divides covered edges
//!   by the *feasible* denominator from [`Analysis::feasible_edges`];
//! * `PxConfig::static_nt_filter` (px-core) vetoes NT-path spawns whose
//!   must-reach unsafe distance is below a threshold, via
//!   [`Analysis::veto_mask`].
//!
//! The feasibility mask is sound for **committed (taken-path) execution
//! only**: an NT-path spawn forcibly drives execution down the edge the
//! branch condition just refuted, so PathExpander can — by design — cover
//! statically-infeasible edges. That is exactly why the feasible-coverage
//! metric intersects its numerator with the feasible set instead of
//! asserting the two never meet.

pub mod cfg;
pub mod constprop;
pub mod lint;
pub mod safety;

pub use cfg::{Block, BranchEdge, Cfg, EXIT};
pub use constprop::{ConstProp, RegState, Value};
pub use lint::{lint, Diagnostic, LintKind};
pub use safety::Safety;

use px_isa::{Instruction, Program};

/// The full static-analysis pipeline over one program: CFG construction,
/// constant propagation, NT-safety classification and lint, computed once
/// and queried many times.
#[derive(Debug, Clone)]
pub struct Analysis {
    cfg: Cfg,
    constprop: ConstProp,
    safety: Safety,
    diagnostics: Vec<Diagnostic>,
    feasible: Vec<[bool; 2]>,
    feasible_edge_count: u32,
}

impl Analysis {
    /// Analyzes `program`.
    #[must_use]
    pub fn of(program: &Program) -> Analysis {
        let cfg = Cfg::build(program);
        let constprop = ConstProp::run(program, &cfg);
        let safety = Safety::of(program, &cfg, &constprop);
        let diagnostics = lint(program, &cfg, &constprop);
        let feasible = constprop.feasible_edges();
        let feasible_edge_count = feasible
            .iter()
            .map(|e| u32::from(e[0]) + u32::from(e[1]))
            .sum();
        Analysis {
            cfg,
            constprop,
            safety,
            diagnostics,
            feasible,
            feasible_edge_count,
        }
    }

    /// The structural control-flow graph.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The constant-propagation result.
    #[must_use]
    pub fn constprop(&self) -> &ConstProp {
        &self.constprop
    }

    /// The NT-safety classification.
    #[must_use]
    pub fn safety(&self) -> &Safety {
        &self.safety
    }

    /// Lint findings, sorted by `(pc, kind)`.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Per-instruction `[taken, not_taken]` feasibility, aligned with the
    /// dynamic `Coverage` tracker's slot layout. Non-branches are
    /// `[false, false]`.
    #[must_use]
    pub fn feasible_edges(&self) -> &[[bool; 2]] {
        &self.feasible
    }

    /// Number of feasible branch edges — the honest coverage denominator
    /// (`Program::static_edge_count` counts all of them, feasible or not).
    #[must_use]
    pub fn feasible_edge_count(&self) -> u32 {
        self.feasible_edge_count
    }

    /// Whether the given edge of the branch at `pc` is statically feasible.
    #[must_use]
    pub fn edge_feasible(&self, pc: u32, edge: BranchEdge) -> bool {
        self.constprop.edge_feasible(pc, edge)
    }

    /// Shortest static distance from the given branch edge to an unsafe
    /// event — the lower bound on an NT-path's Unsafe-Latency (§3.2).
    #[must_use]
    pub fn edge_unsafe_distance(
        &self,
        program: &Program,
        pc: u32,
        edge: BranchEdge,
    ) -> Option<u32> {
        self.safety.edge_unsafe_distance(program, pc, edge)
    }

    /// Spawn-veto mask for `PxConfig::static_nt_filter` with threshold `k`:
    /// `mask[pc][edge.slot()]` is `true` when an NT-path entered over that
    /// edge is guaranteed to hit an unsafe event within fewer than `k`
    /// instructions.
    #[must_use]
    pub fn veto_mask(&self, program: &Program, k: u32) -> Vec<[bool; 2]> {
        self.safety.veto_mask(program, k)
    }

    /// Count of branches whose outcome constant propagation fully decided
    /// (exactly one feasible edge).
    #[must_use]
    pub fn decided_branch_count(&self, program: &Program) -> u32 {
        program
            .code
            .iter()
            .enumerate()
            .filter(|&(pc, insn)| {
                matches!(insn, Instruction::Branch { .. })
                    && self.constprop.reachable(pc as u32)
                    && self
                        .feasible
                        .get(pc)
                        .is_some_and(|e| u32::from(e[0]) + u32::from(e[1]) == 1)
            })
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    #[test]
    fn facade_agrees_with_components() {
        let p = assemble(
            r"
            .code
            main:
                li r2, 1              ; 0
                beq r2, zero, dead    ; 1: infeasible taken edge
                readi                 ; 2
                beq r1, zero, out     ; 3: both edges feasible
                nop                   ; 4
            out:
                exit                  ; 5
            dead:
                exit                  ; 6
            ",
        )
        .unwrap();
        let a = Analysis::of(&p);
        // Four static edges (two branches), three feasible.
        assert_eq!(p.static_edge_count(), 4);
        assert_eq!(a.feasible_edge_count(), 3);
        assert_eq!(a.decided_branch_count(&p), 1);
        assert!(!a.edge_feasible(1, BranchEdge::Taken));
        assert!(a.edge_feasible(1, BranchEdge::NotTaken));
        // The dead arm generates an unreachable-code diagnostic.
        assert!(a
            .diagnostics()
            .iter()
            .any(|d| d.kind == LintKind::UnreachableCode && d.pc == 6));
        // Safety: the not-taken edge of branch 3 runs one nop then exits.
        assert_eq!(a.edge_unsafe_distance(&p, 3, BranchEdge::NotTaken), Some(1));
        // Veto mask with a large threshold vetoes everything that must
        // terminate; the infeasible branch's edges still get classified.
        let mask = a.veto_mask(&p, 1000);
        assert!(mask[3][BranchEdge::NotTaken.slot()]);
    }
}
