//! Reachability-aware sparse constant propagation.
//!
//! A worklist pass over the instruction-level CFG that tracks a three-point
//! constant lattice per register (`Top` = not yet reached, `Const(v)`,
//! `Bottom` = any value) and marks which CFG edges are *executable*. Branch
//! edges whose condition is decidable from the lattice (both operands
//! constant, or the two operands are the same register) are left
//! non-executable on the impossible side — those are the
//! **statically-infeasible** edges that the honest coverage denominator
//! excludes.
//!
//! Soundness is with respect to *committed* (taken-path) execution:
//!
//! * the entry register file is architecturally defined — every register is
//!   zero except `sp`/`fp`, which depend on the machine's memory size and
//!   start at `Bottom`;
//! * loads and input system calls produce `Bottom`;
//! * the predicated variable-fixing instructions are NOPs on the taken path
//!   (the NT-entry predicate is never set there), so they do not transfer;
//! * constant null-guard violations and constant division by zero crash, so
//!   their fall-through successors are not executable;
//! * writes to `zero` are discarded, exactly as the register file does.
//!
//! NT-paths deliberately violate this model — a spawn *forces* the edge the
//! condition just refuted — which is why PathExpander can cover infeasible
//! edges and why the feasible-coverage metric intersects the numerator with
//! the feasible set.

use px_isa::{Instruction, Program, Reg, SyscallCode, DATA_BASE};

use crate::cfg::{BranchEdge, Cfg, EXIT};

/// One register's lattice value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Unreached / no information yet (the lattice top).
    Top,
    /// Always this constant when the instruction executes.
    Const(i32),
    /// May be anything (the lattice bottom).
    Bottom,
}

impl Value {
    /// Lattice meet.
    #[must_use]
    pub fn meet(self, other: Value) -> Value {
        match (self, other) {
            (Value::Top, x) | (x, Value::Top) => x,
            (Value::Const(a), Value::Const(b)) if a == b => Value::Const(a),
            _ => Value::Bottom,
        }
    }

    /// The constant, if this value is one.
    #[must_use]
    pub fn as_const(self) -> Option<i32> {
        match self {
            Value::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// The register file lattice at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegState([Value; Reg::COUNT]);

impl RegState {
    /// The architectural entry state: all registers zero, `sp`/`fp`
    /// machine-dependent.
    fn at_entry() -> RegState {
        let mut s = RegState([Value::Const(0); Reg::COUNT]);
        s.0[Reg::SP.index()] = Value::Bottom;
        s.0[Reg::FP.index()] = Value::Bottom;
        s
    }

    /// Reads a register (`zero` always reads `Const(0)`).
    #[must_use]
    pub fn get(&self, r: Reg) -> Value {
        if r.is_zero() {
            Value::Const(0)
        } else {
            self.0[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: Value) {
        if !r.is_zero() {
            self.0[r.index()] = v;
        }
    }

    fn meet_with(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for i in 0..Reg::COUNT {
            let m = self.0[i].meet(other.0[i]);
            if m != self.0[i] {
                self.0[i] = m;
                changed = true;
            }
        }
        changed
    }
}

/// Result of the constant-propagation pass.
#[derive(Debug, Clone)]
pub struct ConstProp {
    /// In-state (lattice before execution) per reachable instruction;
    /// `None` for instructions the pass proved unreachable.
    states: Vec<Option<RegState>>,
    /// Per-branch executability of the `[taken, not_taken]` edges. Both
    /// `false` for non-branches and unreachable branches.
    branch_executable: Vec<[bool; 2]>,
}

/// Evaluates a branch condition whose outcome is statically decidable:
/// both operands constant, or literally the same register (`x ? x`).
fn decide_branch(cond: px_isa::BranchCond, rs1: Reg, rs2: Reg, a: Value, b: Value) -> Option<bool> {
    if let (Some(a), Some(b)) = (a.as_const(), b.as_const()) {
        return Some(cond.eval(a, b));
    }
    if rs1 == rs2 {
        // cond(x, x) is the same for every x.
        return Some(cond.eval(0, 0));
    }
    None
}

/// Whether a constant address hits the architectural null guard
/// (`[0, DATA_BASE)` always crashes, independent of machine configuration).
fn null_guarded(addr: u32) -> bool {
    addr < DATA_BASE
}

impl ConstProp {
    /// Runs the pass over `program` using the structural `cfg`.
    #[must_use]
    pub fn run(program: &Program, cfg: &Cfg) -> ConstProp {
        let n = program.code.len();
        let mut states: Vec<Option<RegState>> = vec![None; n];
        let mut branch_executable = vec![[false; 2]; n];
        if n == 0 || !program.valid_pc(program.entry) {
            return ConstProp {
                states,
                branch_executable,
            };
        }

        let mut work: Vec<u32> = Vec::new();
        states[program.entry as usize] = Some(RegState::at_entry());
        work.push(program.entry);

        // Merge `out` into `to`'s in-state, queueing `to` on change.
        let flow =
            |states: &mut Vec<Option<RegState>>, work: &mut Vec<u32>, to: u32, out: &RegState| {
                if to == EXIT {
                    return;
                }
                match &mut states[to as usize] {
                    Some(s) => {
                        if s.meet_with(out) {
                            work.push(to);
                        }
                    }
                    None => {
                        states[to as usize] = Some(*out);
                        work.push(to);
                    }
                }
            };

        while let Some(pc) = work.pop() {
            let Some(insn) = program.fetch(pc) else {
                continue;
            };
            let in_state = states[pc as usize].expect("queued pc has a state");
            let mut out = in_state;
            // Successor set: by default the structural successors; refined
            // below for decidable branches, constant crashes, and rets.
            match insn {
                Instruction::Alu { op, rd, rs1, rs2 } => {
                    let v = match (in_state.get(rs1), in_state.get(rs2)) {
                        (Value::Const(a), Value::Const(b)) => match op.eval(a, b) {
                            Some(v) => Value::Const(v),
                            // Constant division by zero: the instruction
                            // always crashes, nothing flows out.
                            None => continue,
                        },
                        _ => Value::Bottom,
                    };
                    out.set(rd, v);
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
                Instruction::AluI { op, rd, rs1, imm } => {
                    let v = match in_state.get(rs1) {
                        Value::Const(a) => match op.eval(a, imm) {
                            Some(v) => Value::Const(v),
                            None => continue,
                        },
                        _ => Value::Bottom,
                    };
                    out.set(rd, v);
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
                Instruction::Load {
                    rd, base, offset, ..
                } => {
                    if let Value::Const(b) = in_state.get(base) {
                        let addr = (b as u32).wrapping_add(offset as u32);
                        if null_guarded(addr) {
                            // Always a null-deref crash.
                            continue;
                        }
                    }
                    out.set(rd, Value::Bottom);
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
                Instruction::Store { base, offset, .. } => {
                    if let Value::Const(b) = in_state.get(base) {
                        let addr = (b as u32).wrapping_add(offset as u32);
                        if null_guarded(addr) {
                            continue;
                        }
                    }
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
                Instruction::Branch { cond, rs1, rs2, .. } => {
                    let a = in_state.get(rs1);
                    let b = in_state.get(rs2);
                    let succs = cfg.succs(pc);
                    match decide_branch(cond, rs1, rs2, a, b) {
                        Some(taken) => {
                            let e = if taken {
                                BranchEdge::Taken
                            } else {
                                BranchEdge::NotTaken
                            };
                            branch_executable[pc as usize][e.slot()] = true;
                            // A decidedly-taken branch to an invalid target
                            // crashes; the not-taken edge executes even when
                            // `pc + 1` is off the end (the crash comes on
                            // the *next* fetch).
                            flow(&mut states, &mut work, succs[e.slot()], &out);
                        }
                        None => {
                            for e in BranchEdge::ALL {
                                branch_executable[pc as usize][e.slot()] = true;
                                flow(&mut states, &mut work, succs[e.slot()], &out);
                            }
                        }
                    }
                }
                Instruction::Jump { .. } => {
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
                Instruction::Call { .. } => {
                    out.set(Reg::RA, Value::Const(pc as i32 + 1));
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
                Instruction::Ret => {
                    match in_state.get(Reg::RA) {
                        Value::Const(t) => {
                            let t = t as u32;
                            if program.valid_pc(t) {
                                flow(&mut states, &mut work, t, &out);
                            }
                            // Invalid constant target: always a BadPc crash.
                        }
                        _ => {
                            for &s in cfg.succs(pc) {
                                flow(&mut states, &mut work, s, &out);
                            }
                        }
                    }
                }
                Instruction::Syscall { code } => match code {
                    SyscallCode::Exit => {}
                    SyscallCode::GetChar
                    | SyscallCode::ReadInt
                    | SyscallCode::Rand
                    | SyscallCode::Time => {
                        out.set(Reg::RV, Value::Bottom);
                        flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                    }
                    SyscallCode::PutChar | SyscallCode::PrintInt => {
                        flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                    }
                },
                // NOPs on the taken path: the NT-entry predicate is never
                // set outside an NT-path, so the fixing instructions do not
                // change committed state.
                Instruction::PMovI { .. }
                | Instruction::PMov { .. }
                | Instruction::PAluI { .. }
                | Instruction::PStore { .. }
                | Instruction::Check { .. }
                | Instruction::SetWatch { .. }
                | Instruction::ClearWatch { .. }
                | Instruction::Nop => {
                    flow(&mut states, &mut work, cfg.succs(pc)[0], &out);
                }
            }
        }

        ConstProp {
            states,
            branch_executable,
        }
    }

    /// The in-state of the instruction at `pc`; `None` if the pass proved
    /// it unreachable.
    #[must_use]
    pub fn state(&self, pc: u32) -> Option<&RegState> {
        self.states.get(pc as usize).and_then(Option::as_ref)
    }

    /// Whether the pass reached the instruction at `pc`.
    #[must_use]
    pub fn reachable(&self, pc: u32) -> bool {
        self.state(pc).is_some()
    }

    /// Whether an edge of the branch at `pc` is executable (feasible).
    /// Always `false` for non-branches and unreachable branches.
    #[must_use]
    pub fn edge_feasible(&self, pc: u32, edge: BranchEdge) -> bool {
        self.branch_executable
            .get(pc as usize)
            .is_some_and(|e| e[edge.slot()])
    }

    /// Per-instruction `[taken, not_taken]` feasibility mask, aligned with
    /// the dynamic coverage tracker's layout.
    #[must_use]
    pub fn feasible_edges(&self) -> Vec<[bool; 2]> {
        self.branch_executable.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn analyze(src: &str) -> (Program, Cfg, ConstProp) {
        let p = assemble(src).unwrap();
        let c = Cfg::build(&p);
        let cp = ConstProp::run(&p, &c);
        (p, c, cp)
    }

    #[test]
    fn constant_branch_has_one_feasible_edge() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                li r1, 1              ; 0
                beq r1, zero, dead    ; 1: never taken
                jmp out               ; 2
            dead:
                nop                   ; 3
            out:
                exit                  ; 4
            ",
        );
        assert!(!cp.edge_feasible(1, BranchEdge::Taken));
        assert!(cp.edge_feasible(1, BranchEdge::NotTaken));
        assert!(!cp.reachable(3), "the dead arm is unreachable");
        assert!(cp.reachable(4));
    }

    #[test]
    fn same_register_comparisons_decide_without_constants() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                readi                 ; 0: r1 = input (Bottom)
                beq r1, r1, t         ; 1: always taken
            t:
                bne r1, r1, u         ; 2: never taken
                exit                  ; 3
            u:
                exit                  ; 4
            ",
        );
        assert!(cp.edge_feasible(1, BranchEdge::Taken));
        assert!(!cp.edge_feasible(1, BranchEdge::NotTaken));
        assert!(!cp.edge_feasible(2, BranchEdge::Taken));
        assert!(cp.edge_feasible(2, BranchEdge::NotTaken));
    }

    #[test]
    fn input_dependent_branches_keep_both_edges() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                readi                 ; 0
                beq r1, zero, z       ; 1
                exit                  ; 2
            z:
                exit                  ; 3
            ",
        );
        assert!(cp.edge_feasible(1, BranchEdge::Taken));
        assert!(cp.edge_feasible(1, BranchEdge::NotTaken));
    }

    #[test]
    fn join_meets_to_bottom() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                readi                 ; 0
                beq r1, zero, b       ; 1
                li r2, 1              ; 2
                jmp j                 ; 3
            b:
                li r2, 2              ; 4
            j:
                beq r2, zero, dead    ; 5: r2 is 1 or 2, never 0... but the
                exit                  ; 6    lattice only knows Bottom
            dead:
                exit                  ; 7
            ",
        );
        // r2 meets 1 ∧ 2 = Bottom at the join: the pass cannot refute the
        // edge (a range analysis could; the constant lattice stays sound by
        // keeping it feasible).
        assert!(cp.edge_feasible(5, BranchEdge::Taken));
        assert!(cp.edge_feasible(5, BranchEdge::NotTaken));
        assert_eq!(cp.state(5).unwrap().get(px_isa::Reg::RV), Value::Bottom);
    }

    #[test]
    fn constant_null_deref_blocks_flow() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                lw r1, 0(zero)        ; 0: constant null deref, always crashes
                exit                  ; 1
            ",
        );
        assert!(cp.reachable(0));
        assert!(!cp.reachable(1), "nothing flows past a certain crash");
    }

    #[test]
    fn constant_division_by_zero_blocks_flow() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                li r1, 4              ; 0
                divi r2, r1, 0        ; 1: always crashes
                exit                  ; 2
            ",
        );
        assert!(!cp.reachable(2));
    }

    #[test]
    fn call_sets_constant_ra_and_ret_returns() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                call f                ; 0
                li r2, 0              ; 1
                exit                  ; 2
            f:
                li r1, 9              ; 3
                ret                   ; 4
            ",
        );
        assert!(cp.reachable(3));
        assert_eq!(cp.state(4).unwrap().get(Reg::RA), Value::Const(1));
        assert!(cp.reachable(1), "ret flows back to the return site");
    }

    #[test]
    fn loop_counter_meets_to_bottom_and_loop_edges_stay_feasible() {
        let (_, _, cp) = analyze(
            r"
            .code
            main:
                li r4, 10             ; 0
            loop:
                subi r4, r4, 1        ; 1
                bgt r4, zero, loop    ; 2
                exit                  ; 3
            ",
        );
        assert!(cp.edge_feasible(2, BranchEdge::Taken));
        assert!(cp.edge_feasible(2, BranchEdge::NotTaken));
    }
}
