//! Static NT-safety classification.
//!
//! The paper's §3.2 *Unsafe-Latency* metric measures, dynamically, how many
//! instructions an NT-path executes before it hits an unsafe event (a system
//! call or a monitor-visible operation) and has to terminate. This module
//! computes the same quantity statically: for every instruction, the length
//! of the *shortest* CFG path from it to an unsafe instruction, and from
//! that a per-edge bound on how long an NT-path entered over that edge can
//! possibly survive.
//!
//! Unsafe instructions are:
//!
//! * every `Syscall` — NT-paths must not make their effects visible (§3.2;
//!   the engines either terminate or sandbox on these);
//! * `SetWatch` / `ClearWatch` — they mutate the bug monitor's watch table,
//!   which is architectural state shared with the taken path;
//! * `Check` probes — they report to the monitor when they fire. A check
//!   whose condition register is a *constant non-zero* value at every
//!   reaching path can never fire, so it is excluded (and separately
//!   flagged by the lint pass as a dead probe).
//!
//! Distances are shortest paths, i.e. an *optimistic lower bound* on the
//! dynamic Unsafe-Latency: if `edge_unsafe_distance` says 3, the NT-path
//! might still survive longer (by branching away), but if every outgoing
//! path funnels into an unsafe event the bound is tight. The spawn veto in
//! the engines (`PxConfig::static_nt_filter`) uses the *must* variant —
//! [`Safety::edge_unsafe_ceiling`] — which is `Some(d)` only when **every**
//! path from the edge reaches an unsafe event within `d` instructions, so a
//! veto never suppresses an NT-path that could have run usefully long.

use px_isa::{Instruction, Program};

use crate::cfg::{BranchEdge, Cfg, EXIT};
use crate::constprop::ConstProp;

/// Per-instruction and per-edge unsafe-distance classification.
#[derive(Debug, Clone)]
pub struct Safety {
    unsafe_here: Vec<bool>,
    /// Shortest distance (in instructions about to execute, self included)
    /// from each pc to an unsafe instruction; `None` = no unsafe event
    /// reachable.
    min_dist: Vec<Option<u32>>,
    /// Longest-path bound: `Some(d)` iff *every* CFG path from this pc
    /// reaches an unsafe instruction within `d` instructions. `None` when
    /// some path escapes to exit or loops unsafely-free.
    max_dist: Vec<Option<u32>>,
}

/// Whether `insn` is an unsafe event for NT-paths. `check_can_fire` lets
/// the caller exclude probes proven dead by constant propagation.
fn is_unsafe(insn: Instruction, check_can_fire: bool) -> bool {
    match insn {
        Instruction::Syscall { .. }
        | Instruction::SetWatch { .. }
        | Instruction::ClearWatch { .. } => true,
        Instruction::Check { .. } => check_can_fire,
        _ => false,
    }
}

impl Safety {
    /// Classifies `program` given its CFG and constant-propagation result.
    #[must_use]
    pub fn of(program: &Program, cfg: &Cfg, cp: &ConstProp) -> Safety {
        let n = program.code.len();
        let mut unsafe_here = vec![false; n];
        for (pc, &insn) in program.code.iter().enumerate() {
            let can_fire = if let Instruction::Check { cond, .. } = insn {
                // Fires when the condition register is zero; a constant
                // non-zero condition at every reaching path is a dead probe.
                match cp.state(pc as u32).map(|s| s.get(cond).as_const()) {
                    // Constant condition: fires exactly when it is zero.
                    Some(Some(c)) => c == 0,
                    // Unknown condition, or unreachable per constprop (an
                    // NT-path may still get there): conservatively can fire.
                    Some(None) | None => true,
                }
            } else {
                true
            };
            unsafe_here[pc] = is_unsafe(insn, can_fire);
        }

        // -- Shortest distance: multi-source BFS over reversed edges. ------
        let mut min_dist: Vec<Option<u32>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        for pc in 0..n {
            if unsafe_here[pc] {
                min_dist[pc] = Some(0);
                queue.push_back(pc as u32);
            }
        }
        while let Some(pc) = queue.pop_front() {
            let d = min_dist[pc as usize].expect("queued pc has a distance");
            for &p in cfg.preds(pc) {
                if min_dist[p as usize].is_none() {
                    min_dist[p as usize] = Some(d + 1);
                    queue.push_back(p);
                }
            }
        }

        // -- Must-reach ceiling: greatest fixpoint over the reversed graph.
        //
        // ceiling(pc) = 0                      if pc is unsafe
        //             = 1 + max over succs     if every successor has a
        //                                      ceiling (EXIT never does)
        //             = None                   otherwise
        //
        // Iterate to a fixpoint from the optimistic assumption `None`; each
        // pc's value only ever moves from None to Some once all successors
        // resolve, and cycles without an unsafe member correctly stay None.
        let mut max_dist: Vec<Option<u32>> = vec![None; n];
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                if max_dist[pc].is_some() {
                    continue;
                }
                let v = if unsafe_here[pc] {
                    Some(0)
                } else {
                    let succs = cfg.succs(pc as u32);
                    if succs.is_empty() || succs.contains(&EXIT) {
                        None
                    } else {
                        succs
                            .iter()
                            .map(|&s| max_dist[s as usize])
                            .try_fold(0u32, |acc, d| d.map(|d| acc.max(d + 1)))
                    }
                };
                if v.is_some() {
                    max_dist[pc] = v;
                    changed = true;
                }
            }
        }

        Safety {
            unsafe_here,
            min_dist,
            max_dist,
        }
    }

    /// Whether the instruction at `pc` is itself an unsafe event.
    #[must_use]
    pub fn is_unsafe_at(&self, pc: u32) -> bool {
        self.unsafe_here.get(pc as usize).copied().unwrap_or(false)
    }

    /// Shortest distance from `pc` (inclusive) to an unsafe instruction.
    #[must_use]
    pub fn unsafe_distance(&self, pc: u32) -> Option<u32> {
        self.min_dist.get(pc as usize).copied().flatten()
    }

    /// Shortest distance to an unsafe event for an NT-path entered over the
    /// given edge of the branch at `pc` — the static analogue of the
    /// paper's per-path Unsafe-Latency lower bound.
    #[must_use]
    pub fn edge_unsafe_distance(
        &self,
        program: &Program,
        pc: u32,
        edge: BranchEdge,
    ) -> Option<u32> {
        self.edge_target(program, pc, edge)
            .and_then(|t| self.unsafe_distance(t))
    }

    /// Must-reach ceiling for an NT-path entered over the given edge:
    /// `Some(d)` iff **every** path from the edge target hits an unsafe
    /// event within `d` instructions. This is the sound basis for vetoing
    /// spawns — such a path cannot possibly survive longer than `d`.
    #[must_use]
    pub fn edge_unsafe_ceiling(&self, program: &Program, pc: u32, edge: BranchEdge) -> Option<u32> {
        self.edge_target(program, pc, edge)
            .and_then(|t| self.max_dist.get(t as usize).copied().flatten())
    }

    fn edge_target(&self, program: &Program, pc: u32, edge: BranchEdge) -> Option<u32> {
        let Some(Instruction::Branch { target, .. }) = program.fetch(pc) else {
            return None;
        };
        let t = match edge {
            BranchEdge::Taken => target,
            BranchEdge::NotTaken => pc + 1,
        };
        program.valid_pc(t).then_some(t)
    }

    /// Builds the per-edge spawn-veto mask for `PxConfig::static_nt_filter`
    /// with threshold `k`: entry `[pc][edge]` is `true` when an NT-path
    /// entered over that edge is *guaranteed* to terminate within fewer
    /// than `k` instructions (must-reach ceiling `< k`), so spawning it
    /// buys no coverage the taken path cannot.
    #[must_use]
    pub fn veto_mask(&self, program: &Program, k: u32) -> Vec<[bool; 2]> {
        let n = program.code.len();
        let mut mask = vec![[false; 2]; n];
        for pc in 0..n as u32 {
            if !matches!(program.fetch(pc), Some(Instruction::Branch { .. })) {
                continue;
            }
            for edge in BranchEdge::ALL {
                mask[pc as usize][edge.slot()] = self
                    .edge_unsafe_ceiling(program, pc, edge)
                    .is_some_and(|d| d < k);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn safety(src: &str) -> (Program, Safety) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let cp = ConstProp::run(&p, &cfg);
        let s = Safety::of(&p, &cfg, &cp);
        (p, s)
    }

    #[test]
    fn syscalls_are_unsafe_at_distance_zero() {
        let (_, s) = safety(
            r"
            .code
            main:
                nop      ; 0
                nop      ; 1
                exit     ; 2
            ",
        );
        assert!(!s.is_unsafe_at(0));
        assert!(s.is_unsafe_at(2));
        assert_eq!(s.unsafe_distance(2), Some(0));
        assert_eq!(s.unsafe_distance(1), Some(1));
        assert_eq!(s.unsafe_distance(0), Some(2));
    }

    #[test]
    fn edge_distance_mirrors_unsafe_latency() {
        let (p, s) = safety(
            r"
            .code
            main:
                readi                 ; 0
                beq r1, zero, fast    ; 1
                nop                   ; 2
                nop                   ; 3
                exit                  ; 4
            fast:
                exit                  ; 5
            ",
        );
        // Taken edge lands directly on an exit syscall: distance 0.
        assert_eq!(s.edge_unsafe_distance(&p, 1, BranchEdge::Taken), Some(0));
        // Not-taken edge runs two nops first.
        assert_eq!(s.edge_unsafe_distance(&p, 1, BranchEdge::NotTaken), Some(2));
    }

    #[test]
    fn must_ceiling_is_none_when_a_path_escapes() {
        let (p, s) = safety(
            r"
            .code
            main:
                readi                 ; 0
                beq r1, zero, sys     ; 1
            spin:
                jmp spin              ; 2: unsafe-free infinite loop
            sys:
                exit                  ; 3
            ",
        );
        // The not-taken edge leads to the safe infinite loop: min distance
        // is None and so is the ceiling — never veto.
        assert_eq!(s.edge_unsafe_distance(&p, 1, BranchEdge::NotTaken), None);
        assert_eq!(s.edge_unsafe_ceiling(&p, 1, BranchEdge::NotTaken), None);
        // The taken edge must hit the syscall immediately.
        assert_eq!(s.edge_unsafe_ceiling(&p, 1, BranchEdge::Taken), Some(0));
    }

    #[test]
    fn ceiling_takes_the_longest_path_unlike_min() {
        let (p, s) = safety(
            r"
            .code
            main:
                readi                 ; 0
                beq r1, zero, a       ; 1
                nop                   ; 2
                nop                   ; 3
                nop                   ; 4
            a:
                exit                  ; 5
            ",
        );
        // From pc 2 both paths reach the exit; min is 3, ceiling is 3 too
        // (straight line). From the branch's taken edge min = ceiling = 0.
        assert_eq!(s.edge_unsafe_distance(&p, 1, BranchEdge::NotTaken), Some(3));
        assert_eq!(s.edge_unsafe_ceiling(&p, 1, BranchEdge::NotTaken), Some(3));
        // veto_mask with k=4 vetoes both edges; with k=1 only the taken one.
        let m4 = s.veto_mask(&p, 4);
        assert_eq!(m4[1], [true, true]);
        let m1 = s.veto_mask(&p, 1);
        assert!(m1[1][BranchEdge::Taken.slot()]);
        assert!(!m1[1][BranchEdge::NotTaken.slot()]);
    }

    #[test]
    fn watch_ops_are_unsafe() {
        let (_, s) = safety(
            r"
            .code
            main:
                watch r2, r3, #4      ; 0
                nop                   ; 1
                unwatch #4            ; 2
                exit                  ; 3
            ",
        );
        assert!(s.is_unsafe_at(0));
        assert!(s.is_unsafe_at(2));
        assert_eq!(s.unsafe_distance(1), Some(1));
    }
}
