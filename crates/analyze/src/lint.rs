//! Guest-program lint pass.
//!
//! Five diagnostic kinds over the CFG + constant-propagation results:
//!
//! * [`LintKind::UnreachableCode`] — instructions no execution can reach
//!   (reported once per maximal run, at its first pc);
//! * [`LintKind::CallRetMismatch`] — a `Ret` in a program with no `Call`,
//!   or a non-`Call` instruction overwriting `ra` (breaking the return
//!   discipline the CFG and the hardware RAS both assume);
//! * [`LintKind::ConstAddrOutOfBounds`] — a load/store whose address is
//!   constant and either inside the null guard (certain crash) or beyond
//!   the program's declared memory size (crash on the default machine);
//! * [`LintKind::DeadCheck`] — a `Check` probe whose condition register is
//!   a constant non-zero value, so it can never fire;
//! * [`LintKind::PredicatedOutsideNt`] — a predicated variable-fixing
//!   instruction (§4.4) that no NT-path entry can reach with the predicate
//!   still set. The predicate is set at NT-spawn and cleared by the first
//!   control transfer, so such an instruction is a NOP on every path.
//!
//! Diagnostics are sorted by `(pc, kind)` and carry the source line, making
//! the output — and its JSON rendering — deterministic byte-for-byte.

use px_isa::{Instruction, Program, Reg, DATA_BASE};

use crate::cfg::Cfg;
use crate::constprop::{ConstProp, Value};

/// What a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    UnreachableCode,
    CallRetMismatch,
    ConstAddrOutOfBounds,
    DeadCheck,
    PredicatedOutsideNt,
}

impl LintKind {
    /// Stable machine-readable name (used by the JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::CallRetMismatch => "call-ret-mismatch",
            LintKind::ConstAddrOutOfBounds => "const-addr-out-of-bounds",
            LintKind::DeadCheck => "dead-check",
            LintKind::PredicatedOutsideNt => "predicated-outside-nt",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub kind: LintKind,
    /// First instruction the finding applies to.
    pub pc: u32,
    /// Source line recorded for that pc (0 when unknown).
    pub line: u32,
    pub message: String,
}

/// The set of pcs an NT-path can enter at: every successor edge of every
/// branch (the spawned path is forced down whichever edge the committed
/// run refuted, and `explore_nt_from_nt` spawns enter the same way).
fn nt_entries(program: &Program) -> Vec<bool> {
    let n = program.code.len();
    let mut entry = vec![false; n];
    for (pc, &insn) in program.code.iter().enumerate() {
        if let Instruction::Branch { target, .. } = insn {
            if program.valid_pc(target) {
                entry[target as usize] = true;
            }
            if pc + 1 < n {
                entry[pc + 1] = true;
            }
        }
    }
    entry
}

/// Runs the lint pass. `cp` must come from the same `program`/`cfg`.
#[must_use]
pub fn lint(program: &Program, cfg: &Cfg, cp: &ConstProp) -> Vec<Diagnostic> {
    let n = program.code.len();
    let mut out = Vec::new();
    let mut push = |kind: LintKind, pc: u32, message: String| {
        out.push(Diagnostic {
            kind,
            pc,
            line: program.source_line(pc),
            message,
        });
    };

    // -- Unreachable code: one diagnostic per maximal dead run. -----------
    let mut run_start: Option<u32> = None;
    for pc in 0..=n as u32 {
        let dead = (pc as usize) < n && !cp.reachable(pc);
        match (dead, run_start) {
            (true, None) => run_start = Some(pc),
            (false, Some(start)) => {
                push(
                    LintKind::UnreachableCode,
                    start,
                    format!("instructions {start}..{pc} are unreachable from entry"),
                );
                run_start = None;
            }
            _ => {}
        }
    }

    // -- Call/ret discipline. ---------------------------------------------
    let has_call = program
        .code
        .iter()
        .any(|i| matches!(i, Instruction::Call { .. }));
    for (pc, &insn) in program.code.iter().enumerate() {
        let pc = pc as u32;
        if !cp.reachable(pc) {
            continue; // already covered by unreachable-code
        }
        match insn {
            Instruction::Ret if !has_call => {
                push(
                    LintKind::CallRetMismatch,
                    pc,
                    "`ret` in a program with no `call`: returns to whatever \
                     `ra` holds (0 at entry, an invalid pc)"
                        .to_string(),
                );
            }
            _ => {
                if crate::cfg::written_reg(&insn) == Some(Reg::RA)
                    && !matches!(insn, Instruction::Call { .. })
                {
                    push(
                        LintKind::CallRetMismatch,
                        pc,
                        "instruction overwrites `ra` outside a `call`, \
                         breaking return discipline"
                            .to_string(),
                    );
                }
            }
        }
    }

    // -- Constant out-of-bounds addresses. --------------------------------
    let declared = program.mem_size;
    for (pc, &insn) in program.code.iter().enumerate() {
        let pc = pc as u32;
        let (base, offset, what) = match insn {
            Instruction::Load { base, offset, .. } => (base, offset, "load"),
            Instruction::Store { base, offset, .. } => (base, offset, "store"),
            Instruction::PStore { base, offset, .. } => (base, offset, "predicated store"),
            _ => continue,
        };
        let Some(state) = cp.state(pc) else { continue };
        let Value::Const(b) = state.get(base) else {
            continue;
        };
        let addr = (b as u32).wrapping_add(offset as u32);
        if addr < DATA_BASE {
            push(
                LintKind::ConstAddrOutOfBounds,
                pc,
                format!(
                    "{what} hits constant address {addr:#x} inside the null \
                     guard [0, {DATA_BASE:#x}): certain crash"
                ),
            );
        } else if addr >= declared {
            push(
                LintKind::ConstAddrOutOfBounds,
                pc,
                format!(
                    "{what} hits constant address {addr:#x} beyond the \
                     program's declared memory size {declared:#x}"
                ),
            );
        }
    }

    // -- Dead checks. ------------------------------------------------------
    for (pc, &insn) in program.code.iter().enumerate() {
        let pc = pc as u32;
        let Instruction::Check { cond, .. } = insn else {
            continue;
        };
        let Some(state) = cp.state(pc) else { continue };
        if let Value::Const(c) = state.get(cond) {
            if c != 0 {
                push(
                    LintKind::DeadCheck,
                    pc,
                    format!(
                        "check condition register `{cond}` is always {c} \
                         (non-zero): the probe can never fire"
                    ),
                );
            }
        }
    }

    // -- Predicated instructions outside NT context. -----------------------
    //
    // The NT-entry predicate is set when a path is spawned at a branch edge
    // and cleared by the first control transfer, so a predicated
    // instruction only ever executes if some branch-successor pc reaches it
    // without an intervening transfer.
    let entries = nt_entries(program);
    for (pc, &insn) in program.code.iter().enumerate() {
        if !insn.is_predicated() {
            continue;
        }
        let mut in_nt = false;
        let mut e = pc;
        loop {
            if entries[e] {
                in_nt = true;
                break;
            }
            if e == 0 || program.code[e - 1].is_control_transfer() {
                break;
            }
            e -= 1;
        }
        if !in_nt {
            push(
                LintKind::PredicatedOutsideNt,
                pc as u32,
                "predicated instruction is not reachable from any NT-path \
                 entry without a predicate-clearing control transfer: it is \
                 a NOP on every path"
                    .to_string(),
            );
        }
    }

    let _ = cfg; // structural CFG retained in the signature for future lints
    out.sort_by_key(|d| (d.pc, d.kind));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn run_lint(src: &str) -> Vec<Diagnostic> {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let cp = ConstProp::run(&p, &cfg);
        lint(&p, &cfg, &cp)
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<LintKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = run_lint(
            r"
            .code
            main:
                readi
                beq r1, zero, z
                printi
            z:
                exit
            ",
        );
        assert!(d.is_empty(), "unexpected diagnostics: {d:?}");
    }

    #[test]
    fn unreachable_run_reported_once() {
        let d = run_lint(
            r"
            .code
            main:
                jmp out       ; 0
                nop           ; 1
                nop           ; 2
            out:
                exit          ; 3
            ",
        );
        assert_eq!(kinds(&d), vec![LintKind::UnreachableCode]);
        assert_eq!(d[0].pc, 1);
        assert!(d[0].message.contains("1..3"));
    }

    #[test]
    fn ret_without_call_flagged() {
        let d = run_lint(
            r"
            .code
            main:
                ret
            ",
        );
        assert_eq!(kinds(&d), vec![LintKind::CallRetMismatch]);
    }

    #[test]
    fn ra_overwrite_flagged() {
        let d = run_lint(
            r"
            .code
            main:
                li ra, 3      ; 0: overwrites ra outside a call
                call f        ; 1
                exit          ; 2
            f:
                ret           ; 3
            ",
        );
        assert!(kinds(&d).contains(&LintKind::CallRetMismatch));
        assert_eq!(d[0].pc, 0);
    }

    #[test]
    fn constant_null_deref_and_oob_flagged() {
        let d = run_lint(
            r"
            .code
            main:
                lw r2, 8(zero)        ; 0: inside null guard
                exit                  ; 1
            ",
        );
        assert_eq!(
            kinds(&d),
            vec![LintKind::ConstAddrOutOfBounds, LintKind::UnreachableCode]
        );
        assert!(d[0].message.contains("null"));
    }

    #[test]
    fn dead_check_flagged() {
        let d = run_lint(
            r"
            .code
            main:
                li r2, 1              ; 0
                nullchk r2, #7        ; 1: cond is constant 1, never fires
                exit                  ; 2
            ",
        );
        assert_eq!(kinds(&d), vec![LintKind::DeadCheck]);
        assert_eq!(d[0].pc, 1);
    }

    #[test]
    fn predicated_at_branch_target_is_fine_elsewhere_flagged() {
        let d = run_lint(
            r"
            .code
            main:
                pli r2, 5             ; 0: before any branch — never executes
                readi                 ; 1
                beq r1, zero, fix     ; 2
                exit                  ; 3
            fix:
                pli r2, 1             ; 4: at a branch target — legitimate
                exit                  ; 5
            ",
        );
        assert_eq!(kinds(&d), vec![LintKind::PredicatedOutsideNt]);
        assert_eq!(d[0].pc, 0);
    }
}
