//! Control-flow graph construction over [`px_isa::Program`].
//!
//! The graph is built at *instruction* granularity — PXVM-32 targets are
//! absolute instruction indices, so every instruction is a node and basic
//! blocks are derived on top. Edges model architectural (taken-path)
//! execution:
//!
//! * `Branch` has two out-edges — the taken target and the fall-through
//!   (`pc + 1`). A fall-through off the end of the code is kept as an edge to
//!   the [`EXIT`] pseudo-node: the next fetch crashes with `BadPc`, which
//!   terminates the path without executing anything further.
//! * `Jump`/`Call` transfer to their target; an invalid target crashes the
//!   transfer itself, so it gets an [`EXIT`] edge.
//! * `Ret` follows `ra`. With call discipline (`ra` written only by `call`)
//!   its possible successors are the return sites of every `call`; if any
//!   other instruction can write `ra`, the set widens to every valid pc
//!   (a sound over-approximation for register-computed returns).
//! * `exit` system calls, and instructions whose only continuation would
//!   fall off the end of the code, edge to [`EXIT`].

use px_isa::{Instruction, Program, Reg};

/// Pseudo-node for "execution leaves the program": the `exit` system call,
/// a crash, or falling off the end of the code.
pub const EXIT: u32 = u32::MAX;

/// One of the two out-edges of a conditional branch.
///
/// The slot convention (`Taken` = 0, `NotTaken` = 1) matches the dynamic
/// coverage tracker's `edges[pc][slot]` layout, so masks computed here index
/// directly into coverage bitmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchEdge {
    /// The branch condition held; control went to `target`.
    Taken,
    /// The condition failed; control fell through to `pc + 1`.
    NotTaken,
}

impl BranchEdge {
    /// Both edges, in slot order.
    pub const ALL: [BranchEdge; 2] = [BranchEdge::Taken, BranchEdge::NotTaken];

    /// The edge's slot in `[taken, not_taken]` pairs.
    #[must_use]
    pub fn slot(self) -> usize {
        match self {
            BranchEdge::Taken => 0,
            BranchEdge::NotTaken => 1,
        }
    }

    /// Short lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BranchEdge::Taken => "taken",
            BranchEdge::NotTaken => "not-taken",
        }
    }
}

/// A basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
}

impl Block {
    /// Instruction indices of the block.
    pub fn pcs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }
}

/// The instruction-level CFG plus its derived basic-block structure.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Per-instruction successors ([`EXIT`] for leaving the program).
    succs: Vec<Vec<u32>>,
    /// Per-instruction predecessors (inverse of `succs`, `EXIT` omitted).
    preds: Vec<Vec<u32>>,
    /// Basic blocks, ordered by start pc.
    blocks: Vec<Block>,
    /// Instruction index → block index.
    block_of: Vec<u32>,
    /// Whether any instruction other than `call` may write `ra` (breaks
    /// call discipline; `ret` successors widen to every valid pc).
    ra_discipline_broken: bool,
}

/// Destination register of an instruction, if it writes one.
pub(crate) fn written_reg(insn: &Instruction) -> Option<Reg> {
    match *insn {
        Instruction::Alu { rd, .. }
        | Instruction::AluI { rd, .. }
        | Instruction::Load { rd, .. }
        | Instruction::PMovI { rd, .. }
        | Instruction::PMov { rd, .. }
        | Instruction::PAluI { rd, .. } => Some(rd),
        // `call` writes `ra` by definition; syscalls write `rv`.
        Instruction::Call { .. } => None,
        Instruction::Syscall { .. } => Some(Reg::RV),
        _ => None,
    }
}

impl Cfg {
    /// Builds the CFG of `program`.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        let n = program.code.len();
        let ra_discipline_broken = program.code.iter().any(|i| written_reg(i) == Some(Reg::RA));
        // Return sites of every call (the call-discipline `ret` targets).
        let ret_sites: Vec<u32> = program
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instruction::Call { .. }))
            .map(|(pc, _)| pc as u32 + 1)
            .filter(|&pc| program.valid_pc(pc))
            .collect();

        let mut succs: Vec<Vec<u32>> = Vec::with_capacity(n);
        for (pc, insn) in program.code.iter().enumerate() {
            let pc = pc as u32;
            let fall = || {
                if program.valid_pc(pc + 1) {
                    pc + 1
                } else {
                    EXIT
                }
            };
            let target_or_exit = |t: u32| if program.valid_pc(t) { t } else { EXIT };
            let s = match *insn {
                Instruction::Branch { target, .. } => {
                    // Slot order: taken first, then fall-through.
                    vec![target_or_exit(target), fall()]
                }
                Instruction::Jump { target } | Instruction::Call { target } => {
                    vec![target_or_exit(target)]
                }
                Instruction::Ret => {
                    if ra_discipline_broken {
                        (0..n as u32).collect()
                    } else if ret_sites.is_empty() {
                        vec![EXIT]
                    } else {
                        ret_sites.clone()
                    }
                }
                Instruction::Syscall {
                    code: px_isa::SyscallCode::Exit,
                } => vec![EXIT],
                _ => vec![fall()],
            };
            succs.push(s);
        }

        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pc, ss) in succs.iter().enumerate() {
            for &s in ss {
                if s != EXIT {
                    preds[s as usize].push(pc as u32);
                }
            }
        }

        // Leaders: entry, every transfer target, every instruction after a
        // control transfer, and every instruction with more than one
        // predecessor (a join point).
        let mut leader = vec![false; n];
        if !program.code.is_empty() {
            leader[program.entry.min(n as u32 - 1) as usize] = true;
            leader[0] = true;
        }
        for (pc, insn) in program.code.iter().enumerate() {
            if insn.is_control_transfer() && pc + 1 < n {
                leader[pc + 1] = true;
            }
            for &s in &succs[pc] {
                if s != EXIT && (insn.is_control_transfer() || preds[s as usize].len() > 1) {
                    leader[s as usize] = true;
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut start = 0usize;
        for pc in 0..n {
            if pc > start && leader[pc] {
                blocks.push(Block {
                    start: start as u32,
                    end: pc as u32,
                });
                start = pc;
            }
            block_of[pc] = blocks.len() as u32;
        }
        if n > 0 {
            blocks.push(Block {
                start: start as u32,
                end: n as u32,
            });
        }

        Cfg {
            succs,
            preds,
            blocks,
            block_of,
            ra_discipline_broken,
        }
    }

    /// Successors of the instruction at `pc` ([`EXIT`] = leaves the program).
    #[must_use]
    pub fn succs(&self, pc: u32) -> &[u32] {
        &self.succs[pc as usize]
    }

    /// Predecessors of the instruction at `pc`.
    #[must_use]
    pub fn preds(&self, pc: u32) -> &[u32] {
        &self.preds[pc as usize]
    }

    /// The basic blocks, ordered by start pc.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Block index of the instruction at `pc`.
    #[must_use]
    pub fn block_of(&self, pc: u32) -> u32 {
        self.block_of[pc as usize]
    }

    /// Whether `ra` can be written by anything other than `call`.
    #[must_use]
    pub fn ra_discipline_broken(&self) -> bool {
        self.ra_discipline_broken
    }

    /// Instructions reachable from `entry` along structural edges.
    #[must_use]
    pub fn reachable(&self, entry: u32) -> Vec<bool> {
        let n = self.succs.len();
        let mut seen = vec![false; n];
        let mut work = Vec::new();
        if (entry as usize) < n {
            seen[entry as usize] = true;
            work.push(entry);
        }
        while let Some(pc) = work.pop() {
            for &s in &self.succs[pc as usize] {
                if s != EXIT && !seen[s as usize] {
                    seen[s as usize] = true;
                    work.push(s);
                }
            }
        }
        seen
    }

    /// Immediate dominators of the basic blocks, computed over the blocks
    /// reachable from the block containing `entry` (the iterative
    /// Cooper–Harvey–Kennedy algorithm). `idom[b] == None` for the entry
    /// block and for unreachable blocks; the entry block dominates itself.
    #[must_use]
    pub fn dominators(&self, entry: u32) -> Vec<Option<u32>> {
        let nb = self.blocks.len();
        if nb == 0 {
            return Vec::new();
        }
        if entry as usize >= self.block_of.len() {
            return vec![None; nb];
        }
        let entry_block = self.block_of(entry) as usize;

        // Block-level successor sets.
        let mut bsuccs: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (b, block) in self.blocks.iter().enumerate() {
            let last = block.end - 1;
            for &s in &self.succs[last as usize] {
                if s != EXIT {
                    let sb = self.block_of(s);
                    if !bsuccs[b].contains(&sb) {
                        bsuccs[b].push(sb);
                    }
                }
            }
        }
        let mut bpreds: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (b, ss) in bsuccs.iter().enumerate() {
            for &s in ss {
                bpreds[s as usize].push(b as u32);
            }
        }

        // Reverse post-order from the entry block.
        let mut order = Vec::with_capacity(nb);
        let mut state = vec![0u8; nb]; // 0 = unseen, 1 = on stack, 2 = done
        let mut stack = vec![(entry_block, 0usize)];
        state[entry_block] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < bsuccs[b].len() {
                let s = bsuccs[b][*i] as usize;
                *i += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        let mut rpo_index = vec![usize::MAX; nb];
        for (i, &b) in order.iter().enumerate() {
            rpo_index[b] = i;
        }

        let mut idom: Vec<Option<u32>> = vec![None; nb];
        idom[entry_block] = Some(entry_block as u32);
        let intersect = |idom: &[Option<u32>], a: u32, b: u32| -> u32 {
            let (mut a, mut b) = (a as usize, b as usize);
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a].expect("processed block has an idom") as usize;
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b].expect("processed block has an idom") as usize;
                }
            }
            a as u32
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                if b == entry_block {
                    continue;
                }
                let mut new_idom: Option<u32> = None;
                for &p in &bpreds[b] {
                    if idom[p as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Self-idom is only meaningful for the entry block; report it as
        // having no *proper* immediate dominator.
        idom[entry_block] = None;
        idom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = assemble(src).unwrap();
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of(".code\nmain:\n  li r1, 1\n  addi r1, r1, 1\n  exit\n");
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.succs(2), &[EXIT], "exit syscall leaves the program");
    }

    #[test]
    fn branch_splits_blocks_and_orders_edges() {
        // 0: beq -> (taken @2, fall-through 1)
        let (_, c) = cfg_of(".code\nmain:\n  beq r1, zero, t\n  nop\nt:  exit\n");
        assert_eq!(c.succs(0), &[2, 1], "taken edge first, then fall-through");
        assert_eq!(c.blocks().len(), 3);
        assert_eq!(c.preds(2), &[0, 1]);
    }

    #[test]
    fn call_ret_edges_follow_call_discipline() {
        let (_, c) = cfg_of(
            r"
            .code
            main:
                call f
                exit
            f:
                ret
            ",
        );
        assert!(!c.ra_discipline_broken());
        assert_eq!(c.succs(0), &[2], "call edges to its target");
        assert_eq!(c.succs(2), &[1], "ret edges to the call's return site");
    }

    #[test]
    fn ra_write_breaks_discipline() {
        let (p, c) = cfg_of(".code\nmain:\n  addi ra, zero, 0\n  ret\n");
        assert!(c.ra_discipline_broken());
        assert_eq!(c.succs(1).len(), p.code.len(), "ret may go anywhere");
    }

    #[test]
    fn fallthrough_off_end_is_an_exit_edge() {
        // The branch at the last instruction: its not-taken edge falls off
        // the end of the code (next fetch crashes).
        let (_, c) = cfg_of(".code\nmain:\n  beq r1, zero, main\n");
        assert_eq!(c.succs(0), &[0, EXIT]);
    }

    #[test]
    fn reachability_skips_dead_code() {
        let (p, c) = cfg_of(
            r"
            .code
            main:
                jmp over
                li r1, 1      ; dead
                li r1, 2      ; dead
            over:
                exit
            ",
        );
        let r = c.reachable(p.entry);
        assert!(r[0] && r[3]);
        assert!(!r[1] && !r[2]);
    }

    #[test]
    fn diamond_dominators() {
        let (p, c) = cfg_of(
            r"
            .code
            main:
                beq r1, zero, right   ; 0
                nop                   ; 1 left
                jmp join              ; 2
            right:
                nop                   ; 3 right
            join:
                exit                  ; 4
            ",
        );
        let idom = c.dominators(p.entry);
        let b = |pc: u32| c.block_of(pc) as usize;
        let entry = c.block_of(0);
        assert_eq!(idom[b(0)], None, "entry has no proper idom");
        assert_eq!(idom[b(1)], Some(entry));
        assert_eq!(idom[b(3)], Some(entry));
        assert_eq!(
            idom[b(4)],
            Some(entry),
            "join is dominated by the branch, not by either arm"
        );
    }
}
