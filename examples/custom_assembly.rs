//! Driving PathExpander from hand-written PXVM-32 assembly — the ISA-level
//! API, without the PXC compiler. Shows checkpoint/rollback, the monitor
//! memory area, predicated fix instructions and the disassembler.
//!
//! Run with: `cargo run --release --example custom_assembly`

use pathexpander::{run_standard, PxConfig};
use px_isa::asm::assemble;
use px_mach::{IoState, MachConfig};

const PROGRAM: &str = r"
    ; A tiny service loop. The error handler (non-taken with this input)
    ; contains an assertion bug, and a predicated fix instruction at its
    ; head repairs the condition variable for NT-path execution.
    .data
    counter: .word 0
    .code
    main:
        li   r10, 25            ; requests to serve
    serve:
        la   r2, counter
        lw   r3, 0(r2)
        addi r3, r3, 1
        sw   r3, 0(r2)

        ; error path: only taken when r10 goes negative (never here)
        blt  r10, zero, error
        jmp  next
    error:
        pli  r10, -1            ; compiler-style fix: pin r10 to the boundary
        li   r5, 0
        assert r5, #99          ; the hidden bug
        jmp  next
    next:
        subi r10, r10, 1
        bgt  r10, zero, serve
        la   r2, counter
        lw   r2, 0(r2)
        printi
        li   r2, 0
        exit
";

fn main() {
    let program = assemble(PROGRAM).expect("assembles");
    println!("disassembly:\n{}", program.disassemble());

    let result = run_standard(
        &program,
        &MachConfig::single_core(),
        // Threshold 1: explore each never-exercised edge exactly once.
        &PxConfig::default()
            .with_max_nt_path_len(50)
            .with_counter_threshold(1),
        IoState::default(),
    );

    println!("taken-path output: {:?}", result.io.output_string());
    println!("exit: {:?}", result.exit);
    println!(
        "NT-paths: {} spawned, {} instructions explored",
        result.stats.spawns, result.stats.nt_instructions
    );
    for record in result.monitor.records() {
        println!(
            "monitor record: site #{} at pc {} ({:?}) — survived the squash",
            record.site, record.pc, record.path
        );
    }
    assert_eq!(
        result.monitor.nt_records().count(),
        1,
        "the error-path assertion fires exactly once, on an NT-path"
    );
    println!("\nthe bug on the never-taken error path was caught without ever taking it.");
}
