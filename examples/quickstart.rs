//! Quickstart: the paper's Figure 1 story, end to end.
//!
//! `print_tokens2` carries a buffer overrun in its string-constant check —
//! the token-buffer scan has no terminator check, so any token without a
//! closing quote overruns the buffer. The buggy path is entered only when a
//! token starts with `"`, which the test input never produces: a plain
//! monitored run misses the bug, PathExpander's non-taken-path exploration
//! finds it.
//!
//! Run with: `cargo run --release --example quickstart`

use pathexpander::run_standard;
use px_detect::{report, Tool};
use px_mach::{run_baseline, IoState, MachConfig};

fn main() {
    // 1. Pick the workload and arm the CCured-style checker.
    let workload = px_workloads::by_name("print_tokens2").expect("bundled workload");
    let compiled = workload.compile_for(Tool::Ccured).expect("compiles");
    let bug_line = workload.marker_line("/*BUG:pt2-v10*/");
    println!(
        "print_tokens2: {} lines of PXC, seeded Figure-1 bug on line {bug_line}",
        workload.loc()
    );

    // 2. A general input: identifiers, numbers, operators — no quotes.
    let input = workload.general_input(2026);
    println!(
        "input ({} bytes): {:?}...",
        input.len(),
        String::from_utf8_lossy(&input[..40.min(input.len())])
    );

    // 3. Baseline monitored run: the checker sees only the taken path.
    let baseline = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::new(input.clone(), 1),
        10_000_000,
    );
    let detections = report(&compiled, &baseline.monitor, Tool::Ccured);
    println!("\nbaseline monitored run:");
    println!(
        "  exit: {:?}, {} instructions",
        baseline.exit, baseline.instructions
    );
    println!(
        "  bug detected: {}",
        detections.iter().any(|d| d.line == bug_line)
    );
    println!(
        "  branch coverage: {:.1}%",
        baseline.coverage.branch_coverage(&compiled.program) * 100.0
    );

    // 4. The same run under PathExpander (standard configuration).
    let px = run_standard(
        &compiled.program,
        &MachConfig::single_core(),
        &workload.px_config(),
        IoState::new(input, 1),
    );
    let detections = report(&compiled, &px.monitor, Tool::Ccured);
    let found = detections.iter().find(|d| d.line == bug_line);
    println!("\nwith PathExpander:");
    println!(
        "  {} NT-paths explored ({} instructions of non-taken code)",
        px.stats.spawns, px.stats.nt_instructions
    );
    println!(
        "  branch coverage: {:.1}% -> {:.1}%",
        px.taken_coverage.branch_coverage(&compiled.program) * 100.0,
        px.total_coverage.branch_coverage(&compiled.program) * 100.0
    );
    match found {
        Some(d) => println!(
            "  BUG FOUND on line {} ({} raw reports, on an NT-path: {})",
            d.line, d.count, d.on_nt_path
        ),
        None => println!("  bug not found (unexpected — file an issue!)"),
    }

    // 5. The buggy source line, for the curious.
    let line = workload
        .source
        .lines()
        .nth(bug_line as usize - 1)
        .unwrap_or_default();
    println!("\nthe bug: {}", line.trim());
}
