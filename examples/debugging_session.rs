//! A debugging session across all three detection methods.
//!
//! Runs every buggy workload under its tools, with and without PathExpander,
//! and prints a per-bug verdict — a miniature version of the paper's
//! Table 4, with the escape reasons of §7.1 spelled out.
//!
//! Run with: `cargo run --release --example debugging_session`

use pathexpander::run_standard;
use px_detect::{classify, report};
use px_mach::{run_baseline, IoState, MachConfig};
use px_workloads::EscapeClass;

fn main() {
    let seed = 424_242;
    let mut detected = 0usize;
    let mut tested = 0usize;
    for workload in px_workloads::buggy() {
        println!("=== {} ({} LOC) ===", workload.name, workload.loc());
        for &tool in &workload.tools {
            let bugs = workload.bugs_for(tool);
            if bugs.is_empty() {
                continue;
            }
            let compiled = workload.compile_for(tool).expect("compiles");
            let input = workload.general_input(seed);

            let base = run_baseline(
                &compiled.program,
                &MachConfig::single_core(),
                IoState::new(input.clone(), seed),
                20_000_000,
            );
            let base_lines: Vec<u32> = report(&compiled, &base.monitor, tool)
                .iter()
                .map(|d| d.line)
                .collect();

            let px = run_standard(
                &compiled.program,
                &MachConfig::single_core(),
                &workload.px_config(),
                IoState::new(input, seed),
            );
            let dets = report(&compiled, &px.monitor, tool);
            let c = classify(&dets, &workload.bug_lines_for(tool), false);

            println!("  [{}] {} seeded bugs:", tool.name(), bugs.len());
            for bug in bugs {
                tested += 1;
                let line = workload.marker_line(&bug.marker);
                let in_base = base_lines.contains(&line);
                let in_px = c.true_positive_lines.contains(&line);
                let verdict = match (in_base, in_px, bug.escape) {
                    (false, true, _) => {
                        detected += 1;
                        "FOUND by PathExpander"
                    }
                    (true, _, _) => "found even by baseline (?)",
                    (false, false, EscapeClass::ValueCoverage) => {
                        "escapes: value-coverage-limited (not a path problem)"
                    }
                    (false, false, EscapeClass::HotEntry) => {
                        "escapes: entry edge saturates the exercise counter"
                    }
                    (false, false, EscapeClass::Inconsistency) => {
                        "escapes: fixed NT-path state masks the bug"
                    }
                    (false, false, EscapeClass::NeedsSpecialInput) => {
                        "escapes: needs an input as special as the trigger"
                    }
                    (false, false, EscapeClass::Helped) => "MISSED (unexpected!)",
                };
                println!("    {:12} line {:3}  {}", bug.id, line, verdict);
            }
        }
        println!();
    }
    println!("bottom line: {detected}/{tested} bugs exposed by PathExpander (paper: 21/38)");
}
