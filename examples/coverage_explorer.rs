//! Coverage explorer: watch branch coverage and NT-path behaviour change as
//! PathExpander's knobs move.
//!
//! Run with: `cargo run --release --example coverage_explorer [app]`
//! (default app: 099.go)

use pathexpander::run_standard;
use px_mach::{IoState, MachConfig};

fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "099.go".to_owned());
    let Some(workload) = px_workloads::by_name(&app) else {
        eprintln!("unknown workload `{app}`; try one of:");
        for w in px_workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    };
    let tool = workload.tools[0];
    let compiled = workload.compile_for(tool).expect("compiles");
    let edges = compiled.program.static_edge_count();
    println!(
        "{}: {} instructions, {} branch edges, checked by {}",
        workload.name,
        compiled.program.code.len(),
        edges,
        tool.name()
    );

    println!("\nMaxNTPathLength sweep (threshold = 5):");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>22}",
        "length", "coverage", "spawns", "NT insns", "stop breakdown"
    );
    for len in [10u32, 50, 100, 500, 1000, 5000] {
        let r = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &workload.px_config().with_max_nt_path_len(len),
            IoState::new(workload.general_input(7), 7),
        );
        let stops = format!(
            "len:{} crash:{} unsafe:{} end:{}",
            r.stats.stops_of("max-length"),
            r.stats.stops_of("crash"),
            r.stats.stops_of("unsafe"),
            r.stats.stops_of("program-end"),
        );
        println!(
            "{:>10} {:>9.1}% {:>10} {:>12} {:>22}",
            len,
            r.total_coverage.branch_coverage(&compiled.program) * 100.0,
            r.stats.spawns,
            r.stats.nt_instructions,
            stops
        );
    }

    println!(
        "\nNTPathCounterThreshold sweep (length = {}):",
        workload.max_nt_path_len
    );
    for threshold in [1u8, 2, 5, 10, 15] {
        let r = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &workload.px_config().with_counter_threshold(threshold),
            IoState::new(workload.general_input(7), 7),
        );
        println!(
            "  threshold {:>2}: coverage {:>5.1}%  spawns {:>5}  skipped-hot {:>6}",
            threshold,
            r.total_coverage.branch_coverage(&compiled.program) * 100.0,
            r.stats.spawns,
            r.stats.skipped_hot
        );
    }

    println!("\nOS-sandbox extension (paper §3.2):");
    for os in [false, true] {
        let r = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &workload.px_config().with_os_sandbox(os),
            IoState::new(workload.general_input(7), 7),
        );
        println!(
            "  os_sandbox={os}: unsafe stops {:>4}, sandboxed syscalls {:>5}, coverage {:>5.1}%",
            r.stats.stops_of("unsafe"),
            r.stats.nt_syscalls_sandboxed,
            r.total_coverage.branch_coverage(&compiled.program) * 100.0
        );
    }
}
