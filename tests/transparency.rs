//! The central architectural invariant: PathExpander is **transparent** to
//! the monitored program. Whatever combination of engines and options
//! explores the non-taken paths, the taken path's output, exit status and
//! final behaviour must be bit-identical to a plain run — NT-path side
//! effects never leak (paper §3.1: "silently, without side effects").

use pathexpander::{run_cmp, run_standard, PxConfig};
use px_mach::{run_baseline, IoState, MachConfig, RunExit};

const BUDGET: u64 = 30_000_000;

fn signature(exit: RunExit, out: &str) -> String {
    format!("{exit:?}|{out}")
}

#[test]
fn every_engine_and_option_is_transparent_on_every_workload() {
    for w in px_workloads::all() {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).expect("compiles");
            for seed in [3u64, 99] {
                let io = || IoState::new(w.general_input(seed), seed);
                let base =
                    run_baseline(&compiled.program, &MachConfig::single_core(), io(), BUDGET);
                let expected = signature(base.exit, &base.io.output_string());

                let configs: Vec<(&str, PxConfig)> = vec![
                    ("standard", w.px_config()),
                    ("standard-unfixed", w.px_config().with_fixes(false)),
                    ("standard-os-sandbox", w.px_config().with_os_sandbox(true)),
                    (
                        "standard-explore-nt",
                        w.px_config().with_explore_nt_from_nt(true),
                    ),
                    (
                        // Rare enough that the extra NT work stays far below
                        // the instruction budget even on the hottest loops.
                        "standard-random-factor",
                        w.px_config().with_random_factor(Some(256)),
                    ),
                    (
                        "standard-tiny-sandbox-pressure",
                        w.px_config().with_max_nt_path_len(5000),
                    ),
                ];
                for (label, cfg) in configs {
                    let r = run_standard(
                        &compiled.program,
                        &MachConfig::single_core(),
                        &cfg.clone().with_max_instructions(BUDGET),
                        io(),
                    );
                    assert_eq!(
                        signature(r.exit, &r.io.output_string()),
                        expected,
                        "{} ({}) seed {seed}: `{label}` leaked NT-path effects",
                        w.name,
                        tool.name(),
                    );
                }

                let cmp_r = run_cmp(
                    &compiled.program,
                    &MachConfig::default(),
                    &w.px_config().cmp().with_max_instructions(BUDGET),
                    io(),
                );
                assert_eq!(
                    signature(cmp_r.exit, &cmp_r.io.output_string()),
                    expected,
                    "{} ({}) seed {seed}: the CMP option leaked NT-path effects",
                    w.name,
                    tool.name(),
                );
            }
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    for w in px_workloads::buggy().into_iter().take(3) {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).expect("compiles");
        let io = || IoState::new(w.general_input(5), 5);
        let once = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        let twice = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        assert_eq!(once.cycles, twice.cycles, "{}", w.name);
        assert_eq!(once.stats.spawns, twice.stats.spawns, "{}", w.name);
        assert_eq!(once.monitor.len(), twice.monitor.len(), "{}", w.name);
        assert_eq!(
            once.total_coverage, twice.total_coverage,
            "{}: coverage must be reproducible",
            w.name
        );
    }
}

#[test]
fn taken_coverage_equals_baseline_coverage() {
    // The coverage PathExpander attributes to the taken path must be exactly
    // what the baseline run covers — NT-exploration must not perturb it.
    for w in px_workloads::buggy() {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).expect("compiles");
        let io = || IoState::new(w.general_input(11), 11);
        let base = run_baseline(&compiled.program, &MachConfig::single_core(), io(), BUDGET);
        let px = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        assert_eq!(
            base.coverage.covered_edges(&compiled.program),
            px.taken_coverage.covered_edges(&compiled.program),
            "{}: taken-path coverage drifted",
            w.name
        );
    }
}
