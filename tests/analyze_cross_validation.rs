//! Cross-validates px-analyze against the dynamic engines.
//!
//! Two properties over randomly generated forward-only programs:
//!
//! 1. **Soundness of infeasibility**: no branch edge that constant
//!    propagation marks statically infeasible is ever covered by the
//!    *taken* path of a dynamic run. (NT-paths are excluded on purpose:
//!    PathExpander exists to force not-taken edges, including refuted
//!    ones — that is the tool working, not the analysis failing.)
//! 2. **Filter transparency**: enabling `static_nt_filter` never breaks
//!    containment (the committed run stays bit-identical to a plain
//!    baseline) and never changes taken-path coverage.
//!
//! Forward-only control flow (branches and jumps only target higher pcs)
//! guarantees every generated program terminates, so no case depends on
//! the instruction budget.

use pathexpander::{differential_run, Mode, PxConfig};
use px_analyze::{Analysis, BranchEdge};
use px_isa::{
    AluOp, BranchCond, CheckKind, Instruction, Program, ProgramBuilder, Reg, SyscallCode, Width,
    DATA_BASE,
};
use px_mach::{Edge, IoState, MachConfig};
use px_util::{Rng, Xoshiro256};

/// Generates a terminating program with `n` instructions: random ALU work,
/// in-bounds memory traffic, input syscalls (so some branches stay
/// undecidable), checks, and forward-only branches/jumps ending in `exit`.
fn random_forward_program(rng: &mut Xoshiro256, n: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let reg = |rng: &mut Xoshiro256| Reg::new(2 + (rng.next_u64() % 8) as u8);
    let alu_op = |rng: &mut Xoshiro256| {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Slt,
            AluOp::Seq,
        ][(rng.next_u64() % 8) as usize]
    };
    let cond = |rng: &mut Xoshiro256| {
        [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Le,
            BranchCond::Gt,
        ][(rng.next_u64() % 6) as usize]
    };
    for pc in 0..n - 1 {
        let insn = match rng.next_u64() % 12 {
            0..=2 => Instruction::AluI {
                op: alu_op(rng),
                rd: reg(rng),
                rs1: reg(rng),
                imm: (rng.next_u64() % 17) as i32 - 8,
            },
            3..=4 => Instruction::Alu {
                op: alu_op(rng),
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            },
            5 => Instruction::Load {
                width: Width::Word,
                rd: reg(rng),
                base: Reg::ZERO,
                offset: (DATA_BASE + 4 * (rng.next_u64() % 16) as u32) as i32,
            },
            6 => Instruction::Store {
                width: Width::Word,
                rs: reg(rng),
                base: Reg::ZERO,
                offset: (DATA_BASE + 4 * (rng.next_u64() % 16) as u32) as i32,
            },
            // Forward branch: target strictly beyond pc, at most the exit.
            7..=9 => Instruction::Branch {
                cond: cond(rng),
                rs1: reg(rng),
                rs2: reg(rng),
                target: pc + 1 + rng.next_u64() as u32 % (n - pc - 1),
            },
            10 => Instruction::Syscall {
                code: [
                    SyscallCode::Rand,
                    SyscallCode::ReadInt,
                    SyscallCode::PrintInt,
                ][(rng.next_u64() % 3) as usize],
            },
            _ => Instruction::Check {
                kind: CheckKind::Assertion,
                cond: reg(rng),
                site: pc,
            },
        };
        b.push(insn, pc + 1);
    }
    b.push(
        Instruction::Syscall {
            code: SyscallCode::Exit,
        },
        n,
    );
    b.finish()
}

fn io(seed: u64) -> IoState {
    // A short numeric line so ReadInt has something to parse.
    IoState::new(format!("{}\n", seed % 97).into_bytes(), seed)
}

fn config(mode: Mode) -> PxConfig {
    let px = PxConfig::default().with_max_instructions(500_000);
    match mode {
        Mode::Standard => px,
        Mode::Cmp => px.cmp(),
    }
}

fn machine(mode: Mode) -> MachConfig {
    match mode {
        Mode::Standard => MachConfig::single_core(),
        Mode::Cmp => MachConfig::default(),
    }
}

#[test]
fn infeasible_edges_are_never_taken_dynamically() {
    let mut rng = Xoshiro256::seeded(0xA11A_57A7);
    for case in 0..150u64 {
        let n = 8 + (rng.next_u64() % 48) as u32;
        let program = random_forward_program(&mut rng, n);
        let analysis = Analysis::of(&program);
        let (r, report) = differential_run(
            &program,
            &machine(Mode::Standard),
            &config(Mode::Standard),
            io(case),
            None,
        );
        assert!(
            report.is_contained(),
            "case {case}: generated program must be contained: {:?}",
            report.violations
        );
        for pc in 0..program.code.len() as u32 {
            for (edge, slot) in [
                (BranchEdge::Taken, Edge::Taken),
                (BranchEdge::NotTaken, Edge::NotTaken),
            ] {
                if r.taken_coverage.covered(pc, slot) {
                    assert!(
                        analysis.edge_feasible(pc, edge),
                        "case {case}: taken path covered pc {pc} {} but the \
                         analysis calls it infeasible\n{}",
                        edge.name(),
                        program.disassemble()
                    );
                }
            }
        }
    }
}

#[test]
fn static_filter_preserves_containment_and_taken_coverage() {
    let mut rng = Xoshiro256::seeded(0xF117_E500);
    for case in 0..60u64 {
        let n = 8 + (rng.next_u64() % 48) as u32;
        let program = random_forward_program(&mut rng, n);
        for mode in [Mode::Standard, Mode::Cmp] {
            let (plain, _) =
                differential_run(&program, &machine(mode), &config(mode), io(case), None);
            for k in [1u32, 4, 16] {
                let px = config(mode).with_static_nt_filter(Some(k));
                let (filtered, report) =
                    differential_run(&program, &machine(mode), &px, io(case), None);
                assert!(
                    report.is_contained(),
                    "case {case} k={k} {mode:?}: filter broke containment: {:?}",
                    report.violations
                );
                assert_eq!(
                    filtered.taken_coverage, plain.taken_coverage,
                    "case {case} k={k} {mode:?}: the filter must not touch the taken path"
                );
                assert_eq!(
                    filtered.exit, plain.exit,
                    "case {case} k={k} {mode:?}: exit status unchanged"
                );
            }
        }
    }
}
