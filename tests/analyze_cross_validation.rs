//! Cross-validates px-analyze against the dynamic engines.
//!
//! Two properties over randomly generated forward-only programs:
//!
//! 1. **Soundness of infeasibility**: no branch edge that constant
//!    propagation marks statically infeasible is ever covered by the
//!    *taken* path of a dynamic run. (NT-paths are excluded on purpose:
//!    PathExpander exists to force not-taken edges, including refuted
//!    ones — that is the tool working, not the analysis failing.)
//! 2. **Filter transparency**: enabling `static_nt_filter` never breaks
//!    containment (the committed run stays bit-identical to a plain
//!    baseline) and never changes taken-path coverage.
//!
//! Forward-only control flow (branches and jumps only target higher pcs)
//! guarantees every generated program terminates, so no case depends on
//! the instruction budget.

use pathexpander::{differential_run, Mode, PxConfig};
use px_analyze::{Analysis, BranchEdge};
use px_isa::{
    AluOp, BranchCond, CheckKind, Instruction, Program, ProgramBuilder, Reg, SyscallCode, Width,
    DATA_BASE,
};
use px_mach::{Edge, IoState, MachConfig};
use px_util::{Rng, Xoshiro256};

/// Generates a terminating program with `n` instructions: random ALU work,
/// in-bounds memory traffic, input syscalls (so some branches stay
/// undecidable), checks, and forward-only branches/jumps ending in `exit`.
fn random_forward_program(rng: &mut Xoshiro256, n: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let reg = |rng: &mut Xoshiro256| Reg::new(2 + (rng.next_u64() % 8) as u8);
    let alu_op = |rng: &mut Xoshiro256| {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Slt,
            AluOp::Seq,
        ][(rng.next_u64() % 8) as usize]
    };
    let cond = |rng: &mut Xoshiro256| {
        [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Le,
            BranchCond::Gt,
        ][(rng.next_u64() % 6) as usize]
    };
    for pc in 0..n - 1 {
        let insn = match rng.next_u64() % 12 {
            0..=2 => Instruction::AluI {
                op: alu_op(rng),
                rd: reg(rng),
                rs1: reg(rng),
                imm: (rng.next_u64() % 17) as i32 - 8,
            },
            3..=4 => Instruction::Alu {
                op: alu_op(rng),
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            },
            5 => Instruction::Load {
                width: Width::Word,
                rd: reg(rng),
                base: Reg::ZERO,
                offset: (DATA_BASE + 4 * (rng.next_u64() % 16) as u32) as i32,
            },
            6 => Instruction::Store {
                width: Width::Word,
                rs: reg(rng),
                base: Reg::ZERO,
                offset: (DATA_BASE + 4 * (rng.next_u64() % 16) as u32) as i32,
            },
            // Forward branch: target strictly beyond pc, at most the exit.
            7..=9 => Instruction::Branch {
                cond: cond(rng),
                rs1: reg(rng),
                rs2: reg(rng),
                target: pc + 1 + rng.next_u64() as u32 % (n - pc - 1),
            },
            10 => Instruction::Syscall {
                code: [
                    SyscallCode::Rand,
                    SyscallCode::ReadInt,
                    SyscallCode::PrintInt,
                ][(rng.next_u64() % 3) as usize],
            },
            _ => Instruction::Check {
                kind: CheckKind::Assertion,
                cond: reg(rng),
                site: pc,
            },
        };
        b.push(insn, pc + 1);
    }
    b.push(
        Instruction::Syscall {
            code: SyscallCode::Exit,
        },
        n,
    );
    b.finish()
}

fn io(seed: u64) -> IoState {
    // A short numeric line so ReadInt has something to parse.
    IoState::new(format!("{}\n", seed % 97).into_bytes(), seed)
}

fn config(mode: Mode) -> PxConfig {
    let px = PxConfig::default().with_max_instructions(500_000);
    match mode {
        Mode::Standard => px,
        Mode::Cmp => px.cmp(),
    }
}

fn machine(mode: Mode) -> MachConfig {
    match mode {
        Mode::Standard => MachConfig::single_core(),
        Mode::Cmp => MachConfig::default(),
    }
}

#[test]
fn infeasible_edges_are_never_taken_dynamically() {
    let mut rng = Xoshiro256::seeded(0xA11A_57A7);
    for case in 0..150u64 {
        let n = 8 + (rng.next_u64() % 48) as u32;
        let program = random_forward_program(&mut rng, n);
        let analysis = Analysis::of(&program);
        let (r, report) = differential_run(
            &program,
            &machine(Mode::Standard),
            &config(Mode::Standard),
            io(case),
            None,
        );
        assert!(
            report.is_contained(),
            "case {case}: generated program must be contained: {:?}",
            report.violations
        );
        for pc in 0..program.code.len() as u32 {
            for (edge, slot) in [
                (BranchEdge::Taken, Edge::Taken),
                (BranchEdge::NotTaken, Edge::NotTaken),
            ] {
                if r.taken_coverage.covered(pc, slot) {
                    assert!(
                        analysis.edge_feasible(pc, edge),
                        "case {case}: taken path covered pc {pc} {} but the \
                         analysis calls it infeasible\n{}",
                        edge.name(),
                        program.disassemble()
                    );
                }
            }
        }
    }
}

#[test]
fn static_filter_preserves_containment_and_taken_coverage() {
    let mut rng = Xoshiro256::seeded(0xF117_E500);
    for case in 0..60u64 {
        let n = 8 + (rng.next_u64() % 48) as u32;
        let program = random_forward_program(&mut rng, n);
        for mode in [Mode::Standard, Mode::Cmp] {
            let (plain, _) =
                differential_run(&program, &machine(mode), &config(mode), io(case), None);
            for k in [1u32, 4, 16] {
                let px = config(mode).with_static_nt_filter(Some(k));
                let (filtered, report) =
                    differential_run(&program, &machine(mode), &px, io(case), None);
                assert!(
                    report.is_contained(),
                    "case {case} k={k} {mode:?}: filter broke containment: {:?}",
                    report.violations
                );
                assert_eq!(
                    filtered.taken_coverage, plain.taken_coverage,
                    "case {case} k={k} {mode:?}: the filter must not touch the taken path"
                );
                assert_eq!(
                    filtered.exit, plain.exit,
                    "case {case} k={k} {mode:?}: exit status unchanged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zoo cross-validation: the same two directions of trust, but over the
// generated workload zoo instead of random instruction soup — real
// structured control flow with known bug sites.
// ---------------------------------------------------------------------------

/// One zoo family per shape, compiled for every tool it supports.
fn zoo_compiled() -> Vec<(String, px_workloads::Workload)> {
    [
        "zoo:state-machine:1",
        "zoo:parser:3:n1",
        "zoo:interpreter:2",
        "zoo:recursive:6:lean",
    ]
    .iter()
    .map(|s| ((*s).to_owned(), px_workloads::by_name(s).expect("zoo spec")))
    .collect()
}

#[test]
fn zoo_infeasible_edges_are_never_taken_dynamically() {
    // The synthesizer must not emit programs whose dynamic taken path
    // contradicts the static analysis; together with the feasible-edge
    // coverage denominators in E15 this keeps "coverage uplift" honest.
    for (spec, w) in zoo_compiled() {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).unwrap();
            let analysis = Analysis::of(&compiled.program);
            let (r, report) = differential_run(
                &compiled.program,
                &machine(Mode::Standard),
                &w.px_config(),
                IoState::new(w.general_input(42), 42),
                None,
            );
            assert!(
                report.is_contained(),
                "{spec}/{}: zoo program must be contained: {:?}",
                tool.name(),
                report.violations
            );
            for pc in 0..compiled.program.code.len() as u32 {
                for (edge, slot) in [
                    (BranchEdge::Taken, Edge::Taken),
                    (BranchEdge::NotTaken, Edge::NotTaken),
                ] {
                    if r.taken_coverage.covered(pc, slot) {
                        assert!(
                            analysis.edge_feasible(pc, edge),
                            "{spec}/{}: taken path covered pc {pc} {} but the \
                             analysis calls it infeasible",
                            tool.name(),
                            edge.name(),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn zoo_bug_markers_sit_in_feasible_code() {
    // Ground truth sanity: every injected bug line must be statically
    // reachable — a bug in code the analysis proves dead could never be
    // detected and would poison the expected/detected bookkeeping.
    for (spec, w) in zoo_compiled() {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).unwrap();
            let analysis = Analysis::of(&compiled.program);
            for bug in &w.bugs {
                let line = w.marker_line(&bug.marker);
                let pcs: Vec<u32> = (0..compiled.program.code.len() as u32)
                    .filter(|&pc| compiled.program.source_line(pc) == line)
                    .collect();
                assert!(
                    !pcs.is_empty(),
                    "{spec}/{}: bug {} line {line} compiled to no instructions",
                    tool.name(),
                    bug.id
                );
                assert!(
                    pcs.iter().any(|&pc| analysis.constprop().reachable(pc)),
                    "{spec}/{}: bug {} line {line} is statically unreachable",
                    tool.name(),
                    bug.id
                );
            }
        }
    }
}
