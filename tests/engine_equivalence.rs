//! The standard configuration and the CMP option must agree on what they
//! detect: the CMP optimization changes *when* NT-paths run, not what they
//! find (paper §7: "results of different PathExpander implementations are
//! similar").

use pathexpander::{run_cmp, run_standard};
use px_detect::{classify, report};
use px_mach::{IoState, MachConfig};

#[test]
fn cmp_and_standard_find_the_same_workload_bugs() {
    // Our kernels spawn far more densely (per instruction) than the paper's
    // full applications, so the default MaxNumNTPaths=32 queue saturates and
    // legitimately skips some spawns in CMP mode. With an ample cap the two
    // engines must agree exactly; with the default cap CMP can only find a
    // subset.
    for w in px_workloads::buggy() {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).unwrap();
        let io = || IoState::new(w.general_input(12345), 12345);
        let std_r = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        let lines = w.bug_lines_for(tool);
        let std_tp =
            classify(&report(&compiled, &std_r.monitor, tool), &lines, false).true_positives();

        let ample = run_cmp(
            &compiled.program,
            &MachConfig::default(),
            &w.px_config().cmp().with_max_outstanding(512),
            io(),
        );
        let ample_tp =
            classify(&report(&compiled, &ample.monitor, tool), &lines, false).true_positives();
        assert_eq!(
            std_tp, ample_tp,
            "{}: engines agree with an ample queue",
            w.name
        );

        let capped = run_cmp(
            &compiled.program,
            &MachConfig::default(),
            &w.px_config().cmp(),
            io(),
        );
        let capped_tp =
            classify(&report(&compiled, &capped.monitor, tool), &lines, false).true_positives();
        assert!(
            capped_tp <= std_tp,
            "{}: the outstanding cap can only lose detections",
            w.name
        );
    }
}

#[test]
fn software_and_hardware_standard_agree_everywhere() {
    // The software implementation shares the exploration engine; its
    // functional results must be identical, not merely similar.
    for w in px_workloads::buggy().into_iter().take(4) {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).unwrap();
        let io = || IoState::new(w.general_input(777), 777);
        let hw = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        let sw = px_soft::run_soft(
            &compiled.program,
            &w.px_config(),
            &px_soft::SoftConfig::default(),
            io(),
        );
        assert_eq!(hw.monitor.len(), sw.run.monitor.len(), "{}", w.name);
        assert_eq!(hw.stats.spawns, sw.run.stats.spawns, "{}", w.name);
        assert_eq!(
            hw.io.output_string(),
            sw.run.io.output_string(),
            "{}",
            w.name
        );
    }
}

/// A cross-shape sample of the generated zoo — small enough for tier-1,
/// wide enough to hit every shape and both deep-loop variants.
fn zoo_sample() -> Vec<px_workloads::Workload> {
    [
        "zoo:state-machine:3",
        "zoo:parser:2:n1",
        "zoo:interpreter:5:n3",
        "zoo:recursive:4",
    ]
    .iter()
    .map(|s| px_workloads::by_name(s).expect("zoo spec parses"))
    .collect()
}

#[test]
fn zoo_engines_agree_on_taken_path_digests() {
    // The generated programs exercise the engines differently from the
    // hand-written workloads (dense dispatch chains, syscall-bounded
    // NT-paths), but the transparency contract is the same: the committed
    // (taken-path) results must be identical under standard, CMP-with-ample-
    // queue, and the software implementation.
    for w in zoo_sample() {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).unwrap();
            let io = || IoState::new(w.general_input(12345), 12345);
            let std_r = run_standard(
                &compiled.program,
                &MachConfig::single_core(),
                &w.px_config(),
                io(),
            );
            let cmp_r = run_cmp(
                &compiled.program,
                &MachConfig::default(),
                &w.px_config().cmp().with_max_outstanding(512),
                io(),
            );
            let sw = px_soft::run_soft(
                &compiled.program,
                &w.px_config(),
                &px_soft::SoftConfig::default(),
                io(),
            );
            let std_d = std_r.taken_path_digest(&compiled.program);
            assert_eq!(
                std_d,
                cmp_r.taken_path_digest(&compiled.program),
                "{}/{}: standard and CMP taken-path digests",
                w.name,
                tool.name()
            );
            assert_eq!(
                std_d,
                sw.run.taken_path_digest(&compiled.program),
                "{}/{}: standard and software taken-path digests",
                w.name,
                tool.name()
            );
        }
    }
}

#[test]
fn zoo_nt_faults_stay_contained() {
    // Seed-1 uniform fault mix injected into NT-paths only: the committed
    // run must be bit-identical to a fault-free one (paper §3.3 isolation).
    use px_mach::{FaultMix, FaultPlan};

    for w in zoo_sample() {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).unwrap();
        let io = IoState::new(w.general_input(999), 999);
        let mut plan = FaultPlan::new(1, FaultMix::uniform(), 4);
        let (r, report) = pathexpander::differential_run(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io,
            Some(&mut plan),
        );
        assert!(
            r.stats.faults_injected > 0,
            "{}: the campaign must actually fire",
            w.name
        );
        assert!(
            report.is_contained(),
            "{}: NT faults leaked into committed state: {:?}",
            w.name,
            report.violations
        );
    }
}
