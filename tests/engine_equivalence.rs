//! The standard configuration and the CMP option must agree on what they
//! detect: the CMP optimization changes *when* NT-paths run, not what they
//! find (paper §7: "results of different PathExpander implementations are
//! similar").

use pathexpander::{run_cmp, run_standard};
use px_detect::{classify, report};
use px_mach::{IoState, MachConfig};

#[test]
fn cmp_and_standard_find_the_same_workload_bugs() {
    // Our kernels spawn far more densely (per instruction) than the paper's
    // full applications, so the default MaxNumNTPaths=32 queue saturates and
    // legitimately skips some spawns in CMP mode. With an ample cap the two
    // engines must agree exactly; with the default cap CMP can only find a
    // subset.
    for w in px_workloads::buggy() {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).unwrap();
        let io = || IoState::new(w.general_input(12345), 12345);
        let std_r = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        let lines = w.bug_lines_for(tool);
        let std_tp =
            classify(&report(&compiled, &std_r.monitor, tool), &lines, false).true_positives();

        let ample = run_cmp(
            &compiled.program,
            &MachConfig::default(),
            &w.px_config().cmp().with_max_outstanding(512),
            io(),
        );
        let ample_tp =
            classify(&report(&compiled, &ample.monitor, tool), &lines, false).true_positives();
        assert_eq!(
            std_tp, ample_tp,
            "{}: engines agree with an ample queue",
            w.name
        );

        let capped = run_cmp(
            &compiled.program,
            &MachConfig::default(),
            &w.px_config().cmp(),
            io(),
        );
        let capped_tp =
            classify(&report(&compiled, &capped.monitor, tool), &lines, false).true_positives();
        assert!(
            capped_tp <= std_tp,
            "{}: the outstanding cap can only lose detections",
            w.name
        );
    }
}

#[test]
fn software_and_hardware_standard_agree_everywhere() {
    // The software implementation shares the exploration engine; its
    // functional results must be identical, not merely similar.
    for w in px_workloads::buggy().into_iter().take(4) {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).unwrap();
        let io = || IoState::new(w.general_input(777), 777);
        let hw = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config(),
            io(),
        );
        let sw = px_soft::run_soft(
            &compiled.program,
            &w.px_config(),
            &px_soft::SoftConfig::default(),
            io(),
        );
        assert_eq!(hw.monitor.len(), sw.run.monitor.len(), "{}", w.name);
        assert_eq!(hw.stats.spawns, sw.run.stats.spawns, "{}", w.name);
        assert_eq!(
            hw.io.output_string(),
            sw.run.io.output_string(),
            "{}",
            w.name
        );
    }
}
