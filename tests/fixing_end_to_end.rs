//! End-to-end §4.4 tests: compiled PXC programs under PathExpander, showing
//! (a) hidden bugs on non-taken paths are detected, (b) boundary fixing
//! removes false positives, and (c) blank data structures let NT-paths cross
//! null-pointer branches to reach real bugs — the `man` scenario of Table 5.

use pathexpander::{run_cmp, run_standard, PxConfig};
use px_isa::CheckKind;
use px_lang::{compile, CompileOptions};
use px_mach::{IoState, MachConfig, RecordKind, RunExit};

fn ccured(src: &str) -> px_lang::CompiledProgram {
    compile(src, &CompileOptions::ccured()).expect("compile")
}

fn bound_failures(monitor: &px_mach::MonitorArea, nt_only: bool) -> Vec<u32> {
    monitor
        .records()
        .iter()
        .filter(|r| !nt_only || r.path.is_nt())
        .filter(|r| matches!(r.kind, RecordKind::Check(CheckKind::CcuredBound)))
        .map(|r| r.site)
        .collect()
}

/// `if (i < 4) a[i] = 1;` with i = 100: the then-edge is never taken. An
/// NT-path into it with the *unfixed* i=100 trips the bounds check (a false
/// positive); fixing i to the boundary value 3 keeps the access in bounds.
const FALSE_POSITIVE_SITE: &str = "
int a[4];
int main() {
    int i = readint();
    int steps;
    for (steps = 0; steps < 20; steps = steps + 1) {
        if (i < 4) {
            a[i] = 1;
        }
        i = i + 1;
    }
    return 0;
}
";

#[test]
fn boundary_fixing_prunes_false_positives() {
    let compiled = ccured(FALSE_POSITIVE_SITE);
    let mach = MachConfig::single_core();
    let io = || IoState::new(b"100".to_vec(), 1);

    let unfixed = run_standard(
        &compiled.program,
        &mach,
        &PxConfig::default().with_fixes(false),
        io(),
    );
    assert_eq!(unfixed.exit, RunExit::Exited(0));
    let fp_before = bound_failures(&unfixed.monitor, true);
    assert!(
        !fp_before.is_empty(),
        "without fixing, the NT-path writes a[100] and trips the check"
    );

    let fixed = run_standard(
        &compiled.program,
        &mach,
        &PxConfig::default().with_fixes(true),
        io(),
    );
    assert_eq!(fixed.exit, RunExit::Exited(0));
    let fp_after = bound_failures(&fixed.monitor, true);
    assert!(
        fp_after.is_empty(),
        "boundary fix i=3 keeps the NT access in bounds, got {fp_after:?}"
    );
}

/// The paper's Figure 1 shape: a real overflow guarded by a branch that the
/// general input never takes. Baseline misses it; PathExpander finds it.
const HIDDEN_OVERFLOW: &str = "
int buf[8];
int main() {
    int mode = readint();
    int i;
    for (i = 0; i < 30; i = i + 1) {
        if (mode == 77) {
            int k;
            for (k = 0; k <= 8; k = k + 1) {
                buf[k] = k;
            }
        }
    }
    return 0;
}
";

#[test]
fn hidden_overflow_found_only_with_pathexpander() {
    let compiled = ccured(HIDDEN_OVERFLOW);
    let mach = MachConfig::single_core();

    let baseline = px_mach::run_baseline(
        &compiled.program,
        &mach,
        IoState::new(b"1".to_vec(), 1),
        1_000_000,
    );
    assert!(
        bound_failures(&baseline.monitor, false).is_empty(),
        "baseline never executes the buggy path"
    );

    let px = run_standard(
        &compiled.program,
        &mach,
        &PxConfig::default(),
        IoState::new(b"1".to_vec(), 1),
    );
    let found = bound_failures(&px.monitor, true);
    assert!(
        !found.is_empty(),
        "PathExpander exposes the buf[8] overflow"
    );
    // The reported site is the buggy line's bounds check.
    let site = compiled
        .sites
        .iter()
        .find(|s| found.contains(&s.id))
        .expect("site info");
    assert_eq!(site.kind, CheckKind::CcuredBound);
}

#[test]
fn hidden_overflow_found_by_cmp_option_too() {
    let compiled = ccured(HIDDEN_OVERFLOW);
    let px = run_cmp(
        &compiled.program,
        &MachConfig::default(),
        &PxConfig::default().cmp(),
        IoState::new(b"1".to_vec(), 1),
    );
    assert!(!bound_failures(&px.monitor, true).is_empty());
}

/// The `man` scenario (§7.2): the buggy code sits behind `if (p != 0)`, and
/// p is null in the monitored run. Without pointer fixing the NT-path
/// crashes on `p->len` before reaching the overflow; with the blank data
/// structure it survives and the real bug is detected.
const NULL_GUARDED_BUG: &str = "
struct Item { int len; int weight; };
int buf[4];
int main() {
    struct Item* p = 0;
    int rounds = readint();
    int i;
    for (i = 0; i < rounds; i = i + 1) {
        if (p != 0) {
            int n = p->len;
            int k;
            for (k = 0; k <= 4; k = k + 1) {
                buf[k] = n + k;
            }
        }
    }
    return 0;
}
";

#[test]
fn blank_structure_lets_nt_path_reach_the_bug() {
    let compiled = ccured(NULL_GUARDED_BUG);
    let mach = MachConfig::single_core();
    let io = || IoState::new(b"10".to_vec(), 1);

    let unfixed = run_standard(
        &compiled.program,
        &mach,
        &PxConfig::default().with_fixes(false),
        io(),
    );
    assert!(
        bound_failures(&unfixed.monitor, true).is_empty(),
        "without fixing, the NT-path crashes on the null deref first"
    );
    assert!(unfixed.stats.stops_of("crash") > 0, "the NT-path did crash");

    let fixed = run_standard(
        &compiled.program,
        &mach,
        &PxConfig::default().with_fixes(true),
        io(),
    );
    assert!(
        !bound_failures(&fixed.monitor, true).is_empty(),
        "with the blank structure, the NT-path reaches and reports the overflow"
    );
}

#[test]
fn coverage_improves_on_compiled_programs() {
    let compiled = ccured(HIDDEN_OVERFLOW);
    let mach = MachConfig::single_core();
    let px = run_standard(
        &compiled.program,
        &mach,
        &PxConfig::default(),
        IoState::new(b"1".to_vec(), 1),
    );
    let taken = px.taken_coverage.branch_coverage(&compiled.program);
    let total = px.total_coverage.branch_coverage(&compiled.program);
    assert!(
        total > taken,
        "NT-paths must add branch coverage ({taken} vs {total})"
    );
}
