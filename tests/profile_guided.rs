//! End-to-end test of profile-guided fix refitting — the §4.4
//! "value-invariants inference" extension.
//!
//! The scenario the paper motivates: a guard *looser* than the data it
//! protects. Boundary fixing pins the condition variable to the guard's
//! boundary (`slot = 63` for `slot < 64`), which overruns the 16-element
//! table it guards — a false positive no boundary fix can avoid. A
//! profiling run learns that whenever the guard actually held, `slot` was
//! at most 15; refitting moves the fix value there.

use pathexpander::{run_standard, PxConfig};
use px_detect::{classify, report, Tool};
use px_lang::refit::collect_branch_profile;
use px_lang::{compile, refit_fixes, CompileOptions};
use px_mach::{IoState, MachConfig};

/// The guard `slot < 64` is usually false (slot ∈ [100, 115]) and
/// occasionally true (slot ∈ [0, 15]); the table has 16 entries. A separate
/// genuinely-buggy path (behind `cmd == 9`, never true) must still be
/// caught after refitting.
const LOOSE_GUARD: &str = "
int table[16];
int hits = 0;
int main() {
    int n = readint();
    int i;
    for (i = 0; i < 40; i = i + 1) {
        int slot = 100 + (n + i) % 16;
        if (i % 8 == 7) { slot = (n + i) % 16; }
        int cmd = n % 8;
        if (slot < 64) {
            table[slot] = table[slot] + 1;
            hits = hits + 1;
        }
        if (cmd == 9) {
            int k;
            for (k = 0; k <= 16; k = k + 1) {
                table[k] = 0; /*SEEDED*/
            }
        }
    }
    printint(hits);
    return 0;
}
";

fn bug_line(src: &str) -> u32 {
    src.lines().position(|l| l.contains("/*SEEDED*/")).unwrap() as u32 + 1
}

#[test]
fn refitting_removes_the_loose_guard_false_positive() {
    let src = LOOSE_GUARD;
    let opts = CompileOptions::ccured();
    let input = || IoState::new(b"5".to_vec(), 5);
    let bug = bug_line(src);
    let px_cfg = PxConfig::default().with_max_instructions(20_000_000);

    // 1. Boundary fixing: NT-paths into the cold `slot < 64` edge run with
    //    slot pinned to 63 and overrun the 16-entry table.
    let compiled = compile(src, &opts).unwrap();
    let run = run_standard(
        &compiled.program,
        &MachConfig::single_core(),
        &px_cfg,
        input(),
    );
    let dets = report(&compiled, &run.monitor, Tool::Ccured);
    let before = classify(&dets, &[bug], true);
    assert_eq!(
        before.true_positives(),
        1,
        "the seeded bug is found with boundary fixing"
    );
    assert!(
        before.false_positives() >= 1,
        "boundary fixing leaves the loose-guard false positive: {dets:?}"
    );

    // 2. Profile on the same general input, refit, re-run.
    let mut refitted = compile(src, &opts).unwrap();
    let profile = collect_branch_profile(
        &refitted.program,
        &MachConfig::single_core(),
        input(),
        10_000_000,
    );
    let patched = refit_fixes(&mut refitted, &profile);
    assert!(patched > 0, "some fix values moved into observed ranges");

    let run = run_standard(
        &refitted.program,
        &MachConfig::single_core(),
        &px_cfg,
        input(),
    );
    let dets = report(&refitted, &run.monitor, Tool::Ccured);
    let after = classify(&dets, &[bug], true);
    assert_eq!(
        after.true_positives(),
        1,
        "the seeded bug survives refitting"
    );
    assert!(
        after.false_positives() < before.false_positives(),
        "refitting prunes the loose-guard false positive ({} -> {})",
        before.false_positives(),
        after.false_positives()
    );

    // 3. Transparency: refitted programs behave identically when run
    //    normally (fixes are NOPs off the NT-path).
    let base_a = px_mach::run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        input(),
        20_000_000,
    );
    let base_b = px_mach::run_baseline(
        &refitted.program,
        &MachConfig::single_core(),
        input(),
        20_000_000,
    );
    assert_eq!(base_a.io.output_string(), base_b.io.output_string());
    assert_eq!(base_a.exit, base_b.exit);
}

#[test]
fn profile_and_refit_work_on_the_real_workloads() {
    // Refitting every workload must never lose a seeded-bug detection, and
    // must never increase NT-only false positives.
    for w in px_workloads::buggy() {
        let tool = w.tools[0];
        let io = || IoState::new(w.general_input(31), 31);
        let px_cfg = w.px_config().with_max_instructions(20_000_000);

        let plain = w.compile_for(tool).unwrap();
        let run = run_standard(&plain.program, &MachConfig::single_core(), &px_cfg, io());
        let dets = report(&plain, &run.monitor, tool);
        let plain_c = classify(&dets, &w.bug_lines_for(tool), true);

        let mut refitted = w.compile_for(tool).unwrap();
        let profile = collect_branch_profile(
            &refitted.program,
            &MachConfig::single_core(),
            io(),
            20_000_000,
        );
        let _ = refit_fixes(&mut refitted, &profile);
        let run = run_standard(&refitted.program, &MachConfig::single_core(), &px_cfg, io());
        let dets = report(&refitted, &run.monitor, tool);
        let refit_c = classify(&dets, &w.bug_lines_for(tool), true);

        assert!(
            refit_c.true_positives() >= plain_c.true_positives(),
            "{} ({}): refitting must not lose detections ({} -> {})",
            w.name,
            tool.name(),
            plain_c.true_positives(),
            refit_c.true_positives()
        );
        assert!(
            refit_c.false_positives() <= plain_c.false_positives(),
            "{} ({}): refitting must not add false positives ({} -> {})",
            w.name,
            tool.name(),
            plain_c.false_positives(),
            refit_c.false_positives()
        );
    }
}
